//! Kernel launch APIs.
//!
//! A *kernel* is a named unit of device work. Two launch geometries cover
//! everything the ADMM solver needs:
//!
//! * [`Device::launch_map`] — one thread per element; used for the
//!   closed-form generator / bus / z / multiplier updates, which the paper
//!   implements by launching as many threads as there are elements.
//! * [`Device::launch_blocks`] — one thread block per element of a state
//!   array; used for the batch TRON branch solves, where each block owns one
//!   branch subproblem.
//!
//! Reductions ([`Device::reduce_max`], [`Device::reduce_sum`]) cover the
//! residual-norm computations that decide convergence without copying data
//! back to the host.
//!
//! Every method here is backend-agnostic: the iteration scheme lives behind
//! the [`LaunchBackend`] trait the device resolved at
//! construction, and this layer only owns the buffer bookkeeping — length
//! assertions, live-element accounting for masked launches, and the
//! empty-reduction convention (`max` over nothing is `0.0`).

use crate::backend::LaunchBackend;
use crate::buffer::DeviceBuffer;
use crate::device::Device;
use std::time::Instant;

impl Device {
    /// Launch a kernel with one thread per element of `buf`. The closure
    /// receives the element index and a mutable reference to the element;
    /// read-only data can be captured by the closure.
    pub fn launch_map<T, F>(&self, name: &str, buf: &mut DeviceBuffer<T>, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        self.launch_impl(name, buf, usize::MAX, f);
    }

    /// Shared body of the whole-buffer launches; `min_len` is the parallel
    /// scheduling granularity (`usize::MAX` keeps the default cheap-kernel
    /// threshold, `1` fans out block-per-subproblem work).
    fn launch_impl<T, F>(&self, name: &str, buf: &mut DeviceBuffer<T>, min_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let start = Instant::now();
        let n = buf.len() as u64;
        self.exec.launch(buf.as_mut_slice(), min_len, f);
        self.exec.bill(&self.stats, name, n, start);
    }

    /// Launch a kernel with one thread block per element of `states`, under
    /// the mental model "one block per subproblem" (the paper's ExaTron
    /// launch geometry). Unlike [`Self::launch_map`], the closure is expected
    /// to do substantial per-element work, so scheduling backends fan out at
    /// single-element granularity: even a handful of blocks spreads across
    /// the worker pool instead of falling below the cheap-kernel sequential
    /// threshold.
    pub fn launch_blocks<T, F>(&self, name: &str, states: &mut DeviceBuffer<T>, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        self.launch_impl(name, states, 1, f);
    }

    /// Launch a kernel over two equally-sized buffers, one thread per index.
    /// Used when an update writes one array while reading another that is
    /// updated elsewhere in the same iteration (e.g. multiplier update reads
    /// residuals and writes `y`).
    pub fn launch_zip<A, B, F>(
        &self,
        name: &str,
        a: &mut DeviceBuffer<A>,
        b: &mut DeviceBuffer<B>,
        f: F,
    ) where
        A: Send,
        B: Send,
        F: Fn(usize, &mut A, &mut B) + Sync,
    {
        assert_eq!(a.len(), b.len(), "launch_zip requires equal lengths");
        let start = Instant::now();
        let n = a.len() as u64;
        self.exec.launch_zip(a.as_mut_slice(), b.as_mut_slice(), f);
        self.exec.bill(&self.stats, name, n, start);
    }

    /// Launch a kernel over a scenario-major buffer holding `active.len()`
    /// equally-sized segments of `seg_len` elements each, skipping the
    /// segments whose mask entry is `false`. This is the batched-driver
    /// analogue of [`Self::launch_map`]: one launch spans `K × n` elements,
    /// and converged scenarios stop consuming kernel work (the recorded block
    /// count only counts elements of active segments). The closure receives
    /// the *global* element index.
    pub fn launch_map_segments<T, F>(
        &self,
        name: &str,
        buf: &mut DeviceBuffer<T>,
        seg_len: usize,
        active: &[bool],
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        self.launch_segments_impl(name, buf, seg_len, active, usize::MAX, f);
    }

    /// Shared body of the segmented launches; `min_len` is the parallel
    /// scheduling granularity (`usize::MAX` keeps the default cheap-kernel
    /// threshold, `1` fans out block-per-subproblem work).
    fn launch_segments_impl<T, F>(
        &self,
        name: &str,
        buf: &mut DeviceBuffer<T>,
        seg_len: usize,
        active: &[bool],
        min_len: usize,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        assert!(seg_len > 0, "segments must be non-empty");
        assert_eq!(
            buf.len(),
            seg_len * active.len(),
            "buffer length must equal seg_len * segments"
        );
        let start = Instant::now();
        let live_segments = active.iter().filter(|&&a| a).count();
        let live = live_segments as u64 * seg_len as u64;
        self.exec
            .launch_segments(buf.as_mut_slice(), seg_len, active, min_len, f);
        self.exec.bill(&self.stats, name, live, start);
    }

    /// One thread *block* per element of the active segments; the segmented
    /// analogue of [`Self::launch_blocks`], used for the batched TRON branch
    /// solves spanning all scenarios in one launch. Schedules at
    /// single-element granularity like [`Self::launch_blocks`].
    pub fn launch_blocks_segments<T, F>(
        &self,
        name: &str,
        states: &mut DeviceBuffer<T>,
        seg_len: usize,
        active: &[bool],
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        self.launch_segments_impl(name, states, seg_len, active, 1, f);
    }

    /// Per-segment max-reduction over a scenario-major buffer: returns one
    /// value per segment, `f64::NAN` for segments whose mask entry is
    /// `false` (their elements are not even visited). Each segment is folded
    /// in index order, so the result is bitwise identical across every
    /// conforming backend and equal to [`Self::reduce_max`] run on the
    /// segment alone.
    pub fn reduce_max_segments<T, F>(
        &self,
        name: &str,
        buf: &DeviceBuffer<T>,
        seg_len: usize,
        active: &[bool],
        f: F,
    ) -> Vec<f64>
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        assert!(seg_len > 0, "segments must be non-empty");
        assert_eq!(
            buf.len(),
            seg_len * active.len(),
            "buffer length must equal seg_len * segments"
        );
        let start = Instant::now();
        let result = self
            .exec
            .reduce_max_segments(buf.as_slice(), seg_len, active, f);
        let live = active.iter().filter(|&&a| a).count() as u64 * seg_len as u64;
        self.exec.bill(&self.stats, name, live, start);
        result
    }

    /// Device-side max-reduction of a per-element score. No host transfer is
    /// recorded: the reduction result is a scalar produced on the device,
    /// mirroring a `cub::DeviceReduce` call. Backends may evaluate scores in
    /// any order but combine them in index order (the determinism contract
    /// in [`crate::backend`]); an empty buffer reduces to `0.0`.
    pub fn reduce_max<T, F>(&self, name: &str, buf: &DeviceBuffer<T>, f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        let start = Instant::now();
        let result = self.exec.reduce_max(buf.as_slice(), f);
        self.exec.bill(&self.stats, name, buf.len() as u64, start);
        if result == f64::NEG_INFINITY {
            0.0
        } else {
            result
        }
    }

    /// Device-side sum-reduction of a per-element score. Same determinism
    /// contract as [`Self::reduce_max`]: index-ordered summation.
    pub fn reduce_sum<T, F>(&self, name: &str, buf: &DeviceBuffer<T>, f: F) -> f64
    where
        T: Sync,
        F: Fn(usize, &T) -> f64 + Sync,
    {
        let start = Instant::now();
        let result = self.exec.reduce_sum(buf.as_slice(), f);
        self.exec.bill(&self.stats, name, buf.len() as u64, start);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use std::sync::Arc;

    fn devices() -> Vec<Device> {
        vec![
            Device::parallel(),
            Device::sequential(),
            Device::vectorized(),
        ]
    }

    #[test]
    fn launch_map_applies_to_every_element() {
        for dev in devices() {
            let mut buf =
                DeviceBuffer::from_host(Arc::clone(dev.stats()), &(0..1000).collect::<Vec<i64>>());
            dev.launch_map("double", &mut buf, |i, x| {
                *x *= 2;
                assert_eq!(*x, 2 * i as i64);
            });
            assert!(buf
                .as_slice()
                .iter()
                .enumerate()
                .all(|(i, &x)| x == 2 * i as i64));
            let snap = dev.stats().snapshot();
            assert_eq!(snap.kernels["double"].launches, 1);
            assert_eq!(snap.kernels["double"].blocks, 1000);
        }
    }

    #[test]
    fn all_backends_agree_on_maps() {
        let host: Vec<f64> = (0..512).map(|i| i as f64 * 0.25).collect();
        let mut results = Vec::new();
        for dev in devices() {
            let mut buf = DeviceBuffer::from_host(Arc::clone(dev.stats()), &host);
            dev.launch_map("sin", &mut buf, |_, x| *x = x.sin() * 3.0 + 1.0);
            results.push(buf.to_host());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn launch_zip_updates_both_buffers() {
        for dev in devices() {
            let stats = Arc::clone(dev.stats());
            let mut a = DeviceBuffer::from_host(stats.clone(), &vec![1.0f64; 100]);
            let mut b = DeviceBuffer::from_host(stats, &vec![2.0f64; 100]);
            dev.launch_zip("swap_add", &mut a, &mut b, |_, x, y| {
                let t = *x;
                *x = *y;
                *y += t;
            });
            assert!(a.as_slice().iter().all(|&x| x == 2.0));
            assert!(b.as_slice().iter().all(|&y| y == 3.0));
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn launch_zip_length_mismatch_panics() {
        let dev = Device::sequential();
        let stats = Arc::clone(dev.stats());
        let mut a = DeviceBuffer::from_host(stats.clone(), &[1.0f64; 3]);
        let mut b = DeviceBuffer::from_host(stats, &[1.0f64; 4]);
        dev.launch_zip("bad", &mut a, &mut b, |_, _, _| {});
    }

    #[test]
    fn reductions_match_reference() {
        for dev in devices() {
            let host: Vec<f64> = (0..777).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
            let buf = DeviceBuffer::from_host(Arc::clone(dev.stats()), &host);
            let max = dev.reduce_max("max_abs", &buf, |_, x| x.abs());
            let sum = dev.reduce_sum("sum", &buf, |_, x| *x);
            let expect_max = host.iter().map(|x| x.abs()).fold(0.0f64, f64::max);
            let expect_sum: f64 = host.iter().sum();
            assert_eq!(max, expect_max);
            assert!((sum - expect_sum).abs() < 1e-9);
        }
    }

    #[test]
    fn reductions_are_bitwise_deterministic_across_backends() {
        // Large enough that the parallel backend genuinely fans out across
        // threads and the vectorized backend runs many full chunks; the
        // reductions must still agree with the sequential backend
        // bit-for-bit, and with themselves across repeated runs.
        let host: Vec<f64> = (0..50_000)
            .map(|i| (i as f64 * 0.37).sin() * 1e-3)
            .collect();
        let seq = Device::sequential();
        let buf_seq = DeviceBuffer::from_host(Arc::clone(seq.stats()), &host);
        let score = |_: usize, x: &f64| x * 1.000_001 + 0.5;
        let sum_seq = seq.reduce_sum("sum", &buf_seq, score);
        let max_seq = seq.reduce_max("max", &buf_seq, |_, x| x.abs());
        for dev in [Device::parallel(), Device::vectorized()] {
            let buf = DeviceBuffer::from_host(Arc::clone(dev.stats()), &host);
            let sum = dev.reduce_sum("sum", &buf, score);
            assert_eq!(sum.to_bits(), sum_seq.to_bits());
            let again = dev.reduce_sum("sum", &buf, score);
            assert_eq!(sum.to_bits(), again.to_bits());
            let max = dev.reduce_max("max", &buf, |_, x| x.abs());
            assert_eq!(max.to_bits(), max_seq.to_bits());
        }
    }

    #[test]
    fn segmented_launch_skips_inactive_segments() {
        for dev in devices() {
            let mut buf = DeviceBuffer::from_host(Arc::clone(dev.stats()), &vec![0.0f64; 4 * 2000]);
            let active = [true, false, true, false];
            dev.launch_map_segments("seg_inc", &mut buf, 2000, &active, |i, x| {
                *x = i as f64 + 1.0;
            });
            for (i, &x) in buf.as_slice().iter().enumerate() {
                if active[i / 2000] {
                    assert_eq!(x, i as f64 + 1.0);
                } else {
                    assert_eq!(x, 0.0, "inactive element {i} was touched");
                }
            }
            // Only active elements count as launched blocks.
            let snap = dev.stats().snapshot();
            assert_eq!(snap.kernels["seg_inc"].blocks, 2 * 2000);
        }
    }

    #[test]
    fn segmented_reduce_matches_whole_segment_reduce() {
        let host: Vec<f64> = (0..3 * 1500)
            .map(|i| ((i * 31) % 97) as f64 - 48.0)
            .collect();
        for dev in devices() {
            let buf = DeviceBuffer::from_host(Arc::clone(dev.stats()), &host);
            let maxes =
                dev.reduce_max_segments("seg_max", &buf, 1500, &[true, false, true], |_, x| {
                    x.abs()
                });
            assert_eq!(maxes.len(), 3);
            assert!(maxes[1].is_nan(), "inactive segment must be NaN");
            for s in [0usize, 2] {
                let expect = host[s * 1500..(s + 1) * 1500]
                    .iter()
                    .map(|x| x.abs())
                    .fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(maxes[s].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn segmented_ops_agree_across_backends_bitwise() {
        let host: Vec<f64> = (0..4 * 1024).map(|i| (i as f64 * 0.11).sin()).collect();
        let active = [true, true, false, true];
        let seq = Device::sequential();
        let mut buf_seq = DeviceBuffer::from_host(Arc::clone(seq.stats()), &host);
        let kernel = |_: usize, x: &mut f64| *x = x.cos() * 1.7 - 0.3;
        seq.launch_map_segments("k", &mut buf_seq, 1024, &active, kernel);
        let ms = seq.reduce_max_segments("m", &buf_seq, 1024, &active, |_, x| *x);
        for dev in [Device::parallel(), Device::vectorized()] {
            let mut buf = DeviceBuffer::from_host(Arc::clone(dev.stats()), &host);
            dev.launch_map_segments("k", &mut buf, 1024, &active, kernel);
            assert_eq!(buf.as_slice(), buf_seq.as_slice());
            let m = dev.reduce_max_segments("m", &buf, 1024, &active, |_, x| *x);
            for (a, b) in m.iter().zip(&ms) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "seg_len * segments")]
    fn segmented_launch_length_mismatch_panics() {
        let dev = Device::sequential();
        let mut buf = DeviceBuffer::from_host(Arc::clone(dev.stats()), &[1.0f64; 10]);
        dev.launch_map_segments("bad", &mut buf, 4, &[true, true], |_, _| {});
    }

    #[test]
    fn reduce_on_empty_buffer_is_zero() {
        for dev in devices() {
            let buf: DeviceBuffer<f64> = DeviceBuffer::zeroed(Arc::clone(dev.stats()), 0);
            assert_eq!(dev.reduce_max("m", &buf, |_, x| *x), 0.0);
            assert_eq!(dev.reduce_sum("s", &buf, |_, x| *x), 0.0);
        }
    }

    #[test]
    fn no_transfers_recorded_during_kernels() {
        let dev = Device::new(DeviceConfig::default());
        let stats = Arc::clone(dev.stats());
        let mut buf = DeviceBuffer::from_host(stats.clone(), &vec![1.0f64; 128]);
        let before = stats.snapshot();
        for _ in 0..10 {
            dev.launch_map("inc", &mut buf, |_, x| *x += 1.0);
            let _ = dev.reduce_max("norm", &buf, |_, x| *x);
        }
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.total_transfers(), 0, "kernels must not transfer");
        assert_eq!(delta.kernels["inc"].launches, 10);
    }
}
