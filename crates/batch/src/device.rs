//! The batch device: configuration and construction.

use crate::stats::DeviceStats;
use std::sync::Arc;

/// Execution backend for kernel launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Run thread blocks on the Rayon thread pool (GPU block-scheduler
    /// stand-in). Results are identical to [`Backend::Sequential`] because
    /// blocks never share mutable state.
    Parallel,
    /// Run thread blocks one at a time on the calling thread. Useful for
    /// debugging and for deterministic micro-benchmarks.
    Sequential,
}

/// Device configuration.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Execution backend.
    pub backend: Backend,
    /// Nominal threads per block (informational; mirrors the CUDA launch
    /// geometry the paper uses — 32 threads per branch block).
    pub threads_per_block: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            backend: Backend::Parallel,
            threads_per_block: 32,
        }
    }
}

/// A simulated batch device. Cheap to clone; all clones share the same
/// statistics collector.
#[derive(Debug, Clone)]
pub struct Device {
    pub(crate) config: DeviceConfig,
    pub(crate) stats: Arc<DeviceStats>,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            config,
            stats: Arc::new(DeviceStats::default()),
        }
    }

    /// A parallel device with default configuration.
    pub fn parallel() -> Self {
        Self::new(DeviceConfig::default())
    }

    /// A sequential (deterministic, single-threaded) device.
    pub fn sequential() -> Self {
        Self::new(DeviceConfig {
            backend: Backend::Sequential,
            ..Default::default()
        })
    }

    /// The device's statistics collector.
    pub fn stats(&self) -> &Arc<DeviceStats> {
        &self.stats
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.config.backend
    }

    /// Configured threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.config.threads_per_block
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_device_is_parallel() {
        let d = Device::default();
        assert_eq!(d.backend(), Backend::Parallel);
        assert_eq!(d.threads_per_block(), 32);
    }

    #[test]
    fn sequential_constructor() {
        assert_eq!(Device::sequential().backend(), Backend::Sequential);
    }

    #[test]
    fn clones_share_stats() {
        let d = Device::parallel();
        let d2 = d.clone();
        d.stats().record_h2d(8);
        assert_eq!(d2.stats().snapshot().host_to_device_transfers, 1);
    }
}
