//! The batch device: configuration, backend resolution, and construction.
//!
//! A [`Device`] pairs a statistics stream with a concrete
//! [`LaunchBackend`] implementor, resolved from the
//! configured [`ExecutionMode`] at construction time. `ExecutionMode::Auto`
//! (the default) resolves with a deterministic precedence — `GRIDSIM_BACKEND`
//! env override, then worker count, then the vectorized fallback — so
//! `Device::default()`, [`DevicePool::from_env`](crate::DevicePool::from_env),
//! and everything built on them honor the environment without any call-site
//! changes. See [`crate::backend`] for the trait, the implementors, and the
//! resolution rule.

use crate::backend::{AnyBackend, ExecutionMode, LaunchBackend};
use crate::stats::DeviceStats;
use std::sync::Arc;

/// Device configuration.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Execution mode; `Auto` (the default) resolves at device
    /// construction via [`ExecutionMode::resolve`].
    pub backend: ExecutionMode,
    /// Nominal threads per block (informational; mirrors the CUDA launch
    /// geometry the paper uses — 32 threads per branch block).
    pub threads_per_block: usize,
}

impl DeviceConfig {
    /// Configuration pinned to a concrete mode.
    pub fn with_mode(mode: ExecutionMode) -> Self {
        DeviceConfig {
            backend: mode,
            ..Default::default()
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            backend: ExecutionMode::Auto,
            threads_per_block: 32,
        }
    }
}

/// A simulated batch device. Cheap to clone; all clones share the same
/// statistics collector and resolved backend.
#[derive(Debug, Clone)]
pub struct Device {
    pub(crate) config: DeviceConfig,
    pub(crate) exec: AnyBackend,
    pub(crate) stats: Arc<DeviceStats>,
}

impl Device {
    /// Create a device with the given configuration, resolving `Auto` to a
    /// concrete backend now (so every launch on this device — and every
    /// clone — uses the same backend even if the environment changes
    /// later).
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            exec: AnyBackend::from_mode(config.backend),
            config,
            stats: Arc::new(DeviceStats::default()),
        }
    }

    /// A device with the default (auto-resolved) configuration.
    pub fn auto() -> Self {
        Self::new(DeviceConfig::default())
    }

    /// A device pinned to the parallel (thread-pool) backend.
    pub fn parallel() -> Self {
        Self::new(DeviceConfig::with_mode(ExecutionMode::Parallel))
    }

    /// A device pinned to the sequential (deterministic, single-threaded)
    /// backend.
    pub fn sequential() -> Self {
        Self::new(DeviceConfig::with_mode(ExecutionMode::Sequential))
    }

    /// A device pinned to the vectorized (chunked, branch-free) backend.
    pub fn vectorized() -> Self {
        Self::new(DeviceConfig::with_mode(ExecutionMode::Vectorized))
    }

    /// The device's statistics collector.
    pub fn stats(&self) -> &Arc<DeviceStats> {
        &self.stats
    }

    /// The *resolved* execution mode — never [`ExecutionMode::Auto`]. For
    /// explicitly-pinned devices this equals the configured mode, so
    /// existing `device.backend() == ExecutionMode::Parallel` comparisons
    /// keep their meaning.
    pub fn backend(&self) -> ExecutionMode {
        self.exec.mode()
    }

    /// The *configured* execution mode, which may be
    /// [`ExecutionMode::Auto`]; see [`Self::backend`] for the resolution.
    pub fn mode(&self) -> ExecutionMode {
        self.config.backend
    }

    /// Configured threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.config.threads_per_block
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_device_resolves_auto() {
        let d = Device::default();
        assert_eq!(d.mode(), ExecutionMode::Auto);
        // The resolved backend is concrete and matches the documented rule
        // for whatever environment this test runs under.
        assert_eq!(d.backend(), ExecutionMode::Auto.resolve());
        assert_ne!(d.backend(), ExecutionMode::Auto);
        assert_eq!(d.threads_per_block(), 32);
    }

    #[test]
    fn pinned_constructors_resolve_to_themselves() {
        assert_eq!(Device::parallel().backend(), ExecutionMode::Parallel);
        assert_eq!(Device::sequential().backend(), ExecutionMode::Sequential);
        assert_eq!(Device::vectorized().backend(), ExecutionMode::Vectorized);
    }

    #[test]
    fn clones_share_stats_and_backend() {
        let d = Device::parallel();
        let d2 = d.clone();
        d.stats().record_h2d(8);
        assert_eq!(d2.stats().snapshot().host_to_device_transfers, 1);
        assert_eq!(d2.backend(), d.backend());
    }
}
