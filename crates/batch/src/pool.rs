//! A pool of logical devices.
//!
//! The paper maps independent subproblem batches onto one physical GPU; the
//! natural next rung on the throughput ladder is several devices, each with
//! its own kernel-stat stream (the CUDA analogue: one device + stream per
//! shard, `cudaSetDevice` before each launch). [`DevicePool`] models exactly
//! that: `N` logical [`Device`]s sharing a configuration but **not** sharing
//! statistics, so per-device utilization stays observable and a scheduler
//! can bill each shard's kernel work to the device that ran it.
//!
//! Logical devices are an execution-engine concept, not a speed claim: on
//! this simulated substrate every device's kernels run on the same
//! host thread pool. What the pool buys is the *architecture* — sharding,
//! per-device accounting, and a device-count axis (`GRIDSIM_DEVICES`) that
//! CI sweeps so multi-device paths cannot silently rot.

use crate::backend::ExecutionMode;
use crate::device::{Device, DeviceConfig};
use crate::stats::StatsSnapshot;

/// Environment variable selecting the logical device count for
/// [`DevicePool::from_env`] (used by the CI device-count matrix).
pub const DEVICE_COUNT_ENV: &str = "GRIDSIM_DEVICES";

/// A fixed-size pool of logical devices with independent statistics.
#[derive(Debug, Clone)]
pub struct DevicePool {
    devices: Vec<Device>,
}

impl DevicePool {
    /// Create a pool of `n` logical devices sharing `config`. Each device
    /// gets its own statistics collector.
    pub fn new(n: usize, config: DeviceConfig) -> Self {
        assert!(n >= 1, "a device pool needs at least one device");
        DevicePool {
            devices: (0..n).map(|_| Device::new(config.clone())).collect(),
        }
    }

    /// A pool of `n` devices with the default (auto-resolved) mode; see
    /// [`ExecutionMode::resolve`] for the `GRIDSIM_BACKEND` → worker-count
    /// precedence.
    pub fn auto(n: usize) -> Self {
        Self::new(n, DeviceConfig::default())
    }

    /// A pool of `n` devices pinned to the parallel (thread-pool) backend.
    pub fn parallel(n: usize) -> Self {
        Self::new(n, DeviceConfig::with_mode(ExecutionMode::Parallel))
    }

    /// A pool of `n` devices pinned to the sequential (deterministic,
    /// single-threaded) backend.
    pub fn sequential(n: usize) -> Self {
        Self::new(n, DeviceConfig::with_mode(ExecutionMode::Sequential))
    }

    /// A pool of `n` devices pinned to the vectorized (chunked,
    /// branch-free) backend.
    pub fn vectorized(n: usize) -> Self {
        Self::new(n, DeviceConfig::with_mode(ExecutionMode::Vectorized))
    }

    /// Wrap one existing device as a single-device pool (shares its
    /// statistics stream — the K-scenarios-on-1-device special case).
    pub fn single(device: Device) -> Self {
        DevicePool {
            devices: vec![device],
        }
    }

    /// A pool built from the environment: `GRIDSIM_DEVICES` sizes it
    /// (default 1) and the devices auto-resolve their backend, so
    /// `GRIDSIM_BACKEND` selects the execution scheme — the two axes the
    /// CI matrix sweeps.
    pub fn from_env() -> Self {
        Self::auto(Self::env_device_count())
    }

    /// The device count `GRIDSIM_DEVICES` requests (default 1; zero and
    /// unparseable values fall back to 1).
    pub fn env_device_count() -> usize {
        std::env::var(DEVICE_COUNT_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }

    /// Number of logical devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false (the constructor rejects empty pools); present for
    /// `len`/`is_empty` API symmetry.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The `i`-th logical device.
    pub fn device(&self, i: usize) -> &Device {
        &self.devices[i]
    }

    /// All logical devices, in index order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The pool's resolved execution mode (shared by every device).
    pub fn backend(&self) -> ExecutionMode {
        self.devices[0].backend()
    }

    /// Per-device statistics snapshots, in device order.
    pub fn snapshots(&self) -> Vec<StatsSnapshot> {
        self.devices.iter().map(|d| d.stats().snapshot()).collect()
    }

    /// Per-device statistics deltas since a `before` baseline (as returned
    /// by [`DevicePool::snapshots`]), in device order — the counters one
    /// engine run billed to each device.
    pub fn snapshots_since(&self, before: &[StatsSnapshot]) -> Vec<StatsSnapshot> {
        assert_eq!(before.len(), self.devices.len(), "one baseline per device");
        self.devices
            .iter()
            .zip(before)
            .map(|(d, b)| d.stats().snapshot().since(b))
            .collect()
    }

    /// One snapshot aggregating every device's counters (kernel timings
    /// summed per kernel name across devices).
    pub fn combined_snapshot(&self) -> StatsSnapshot {
        let mut total = StatsSnapshot::default();
        for d in &self.devices {
            total.merge(&d.stats().snapshot());
        }
        total
    }

    /// Reset every device's statistics.
    pub fn reset_stats(&self) {
        for d in &self.devices {
            d.stats().reset();
        }
    }
}

impl Default for DevicePool {
    fn default() -> Self {
        Self::parallel(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_have_independent_stats_streams() {
        let pool = DevicePool::parallel(3);
        pool.device(0).stats().record_h2d(100);
        pool.device(2).stats().record_h2d(50);
        let snaps = pool.snapshots();
        assert_eq!(snaps[0].host_to_device_transfers, 1);
        assert_eq!(snaps[1].host_to_device_transfers, 0);
        assert_eq!(snaps[2].host_to_device_transfers, 1);
        let combined = pool.combined_snapshot();
        assert_eq!(combined.host_to_device_transfers, 2);
        assert_eq!(combined.host_to_device_bytes, 150);
    }

    #[test]
    fn combined_snapshot_merges_kernel_streams() {
        let pool = DevicePool::sequential(2);
        pool.device(0)
            .stats()
            .record_launch("k", 10, std::time::Duration::from_micros(5));
        pool.device(1)
            .stats()
            .record_launch("k", 30, std::time::Duration::from_micros(7));
        pool.device(1)
            .stats()
            .record_launch("j", 1, std::time::Duration::ZERO);
        let combined = pool.combined_snapshot();
        assert_eq!(combined.kernels["k"].launches, 2);
        assert_eq!(combined.kernels["k"].blocks, 40);
        assert_eq!(
            combined.kernels["k"].elapsed,
            std::time::Duration::from_micros(12)
        );
        assert_eq!(combined.total_launches(), 3);
    }

    #[test]
    fn single_wraps_the_given_device_and_its_stats() {
        let dev = Device::parallel();
        dev.stats().record_d2h(8);
        let pool = DevicePool::single(dev.clone());
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.snapshots()[0].device_to_host_transfers, 1);
        // Same collector, not a copy.
        pool.device(0).stats().record_d2h(8);
        assert_eq!(dev.stats().snapshot().device_to_host_transfers, 2);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_pool_is_rejected() {
        let _ = DevicePool::parallel(0);
    }

    #[test]
    fn pool_constructors_pin_their_modes() {
        assert_eq!(DevicePool::parallel(2).backend(), ExecutionMode::Parallel);
        assert_eq!(
            DevicePool::sequential(1).backend(),
            ExecutionMode::Sequential
        );
        assert_eq!(
            DevicePool::vectorized(1).backend(),
            ExecutionMode::Vectorized
        );
    }

    /// `from_env` pools resolve their backend exactly as a bare `Auto`
    /// device would — this is how `GRIDSIM_BACKEND` reaches every solver
    /// built on `from_env` without call-site changes.
    #[test]
    fn env_pool_backend_follows_auto_resolution() {
        assert_eq!(
            DevicePool::from_env().backend(),
            ExecutionMode::Auto.resolve()
        );
    }

    #[test]
    fn env_device_count_defaults_to_one() {
        // The test environment does not set GRIDSIM_DEVICES; the CI matrix
        // does, and the scheduler suite asserts the parsed value there.
        if std::env::var(DEVICE_COUNT_ENV).is_err() {
            assert_eq!(DevicePool::env_device_count(), 1);
        }
    }
}
