//! Branch (transmission line / transformer) records and admittance math.

use serde::{Deserialize, Serialize};

/// A branch between a *from* bus and a *to* bus. Impedances are in per unit on
/// the system MVA base, ratings in MVA, angles in degrees (MATPOWER
/// conventions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Branch {
    /// External id of the from bus.
    pub from: usize,
    /// External id of the to bus.
    pub to: usize,
    /// Series resistance (p.u.).
    pub r: f64,
    /// Series reactance (p.u.).
    pub x: f64,
    /// Total line charging susceptance (p.u.).
    pub b: f64,
    /// Long-term MVA rating. `0.0` means unlimited.
    pub rate_a: f64,
    /// Off-nominal tap ratio (`0.0` means nominal, i.e. 1.0).
    pub tap: f64,
    /// Phase shift angle (degrees).
    pub shift: f64,
    /// In-service flag.
    pub status: bool,
    /// Minimum angle difference (degrees).
    pub angmin: f64,
    /// Maximum angle difference (degrees).
    pub angmax: f64,
}

/// Branch admittance coefficients in the notation of the paper's
/// formulation (1):
///
/// ```text
/// p_ij =  g_ii w_i + g_ij w^R + b_ij w^I
/// q_ij = -b_ii w_i - b_ij w^R + g_ij w^I
/// p_ji =  g_jj w_j + g_ji w^R - b_ji w^I
/// q_ji = -b_jj w_j - b_ji w^R - g_ji w^I
/// ```
///
/// where `w_i = v_i^2`, `w^R = v_i v_j cos(θ_i - θ_j)` and
/// `w^I = v_i v_j sin(θ_i - θ_j)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchAdmittance {
    pub gii: f64,
    pub bii: f64,
    pub gij: f64,
    pub bij: f64,
    pub gji: f64,
    pub bji: f64,
    pub gjj: f64,
    pub bjj: f64,
}

impl Branch {
    /// A plain transmission line (no tap, no shift) with the given impedance.
    pub fn line(from: usize, to: usize, r: f64, x: f64, b: f64, rate_a: f64) -> Self {
        Branch {
            from,
            to,
            r,
            x,
            b,
            rate_a,
            tap: 0.0,
            shift: 0.0,
            status: true,
            angmin: -360.0,
            angmax: 360.0,
        }
    }

    /// Effective tap ratio (1.0 when the MATPOWER field is zero).
    pub fn tap_ratio(&self) -> f64 {
        if self.tap == 0.0 {
            1.0
        } else {
            self.tap
        }
    }

    /// Series admittance `y = 1 / (r + jx)` returned as `(g, b)`.
    pub fn series_admittance(&self) -> (f64, f64) {
        let d = self.r * self.r + self.x * self.x;
        assert!(
            d > 0.0,
            "branch {}-{} has zero impedance",
            self.from,
            self.to
        );
        (self.r / d, -self.x / d)
    }

    /// Compute the admittance coefficients used by formulation (1).
    ///
    /// Follows the MATPOWER branch model: with series admittance `y_s`,
    /// charging `b_c`, complex tap `a = τ e^{jθ_shift}`,
    ///
    /// ```text
    /// Y_ff = (y_s + j b_c / 2) / |a|^2     ->  g_ii + j b_ii
    /// Y_ft = -y_s / conj(a)                ->  g_ij + j b_ij
    /// Y_tf = -y_s / a                      ->  g_ji + j b_ji
    /// Y_tt =  y_s + j b_c / 2              ->  g_jj + j b_jj
    /// ```
    pub fn admittance(&self) -> BranchAdmittance {
        let (gs, bs) = self.series_admittance();
        let bc2 = self.b / 2.0;
        let tau = self.tap_ratio();
        let theta = self.shift.to_radians();
        let (sin_t, cos_t) = theta.sin_cos();
        let tau2 = tau * tau;

        // Y_ff = (ys + j*bc/2) / tau^2
        let gii = gs / tau2;
        let bii = (bs + bc2) / tau2;

        // a = tau * e^{j theta};  conj(a) = tau * e^{-j theta}
        // Y_ft = -ys / conj(a) = -(gs + j bs) * e^{j theta} / tau
        let gij = -(gs * cos_t - bs * sin_t) / tau;
        let bij = -(gs * sin_t + bs * cos_t) / tau;

        // Y_tf = -ys / a = -(gs + j bs) * e^{-j theta} / tau
        let gji = -(gs * cos_t + bs * sin_t) / tau;
        let bji = -(bs * cos_t - gs * sin_t) / tau;

        // Y_tt = ys + j*bc/2
        let gjj = gs;
        let bjj = bs + bc2;

        BranchAdmittance {
            gii,
            bii,
            gij,
            bij,
            gji,
            bji,
            gjj,
            bjj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_line() -> Branch {
        Branch::line(1, 2, 0.01, 0.1, 0.02, 250.0)
    }

    #[test]
    fn series_admittance_inverse_of_impedance() {
        let br = simple_line();
        let (g, b) = br.series_admittance();
        // (r + jx)(g + jb) should be 1 + 0j
        let re = br.r * g - br.x * b;
        let im = br.r * b + br.x * g;
        assert!((re - 1.0).abs() < 1e-12);
        assert!(im.abs() < 1e-12);
    }

    #[test]
    fn admittance_no_tap_symmetry() {
        let br = simple_line();
        let y = br.admittance();
        // Without tap/shift the off-diagonal blocks coincide and the diagonal
        // blocks are equal.
        assert!((y.gij - y.gji).abs() < 1e-12);
        assert!((y.bij - y.bji).abs() < 1e-12);
        assert!((y.gii - y.gjj).abs() < 1e-12);
        assert!((y.bii - y.bjj).abs() < 1e-12);
    }

    #[test]
    fn admittance_with_tap_scales_from_side() {
        let mut br = simple_line();
        br.tap = 1.05;
        let y = br.admittance();
        let y0 = simple_line().admittance();
        assert!((y.gii - y0.gii / (1.05 * 1.05)).abs() < 1e-12);
        assert!((y.gjj - y0.gjj).abs() < 1e-12);
        assert!((y.gij - y0.gij / 1.05).abs() < 1e-12);
    }

    #[test]
    fn phase_shift_breaks_off_diagonal_symmetry() {
        let mut br = simple_line();
        br.shift = 10.0;
        let y = br.admittance();
        assert!((y.gij - y.gji).abs() > 1e-6 || (y.bij - y.bji).abs() > 1e-6);
    }

    #[test]
    fn zero_power_flow_at_flat_voltage_no_shunt() {
        // With equal voltage magnitudes, zero angle difference, and no line
        // charging, a lossless line carries no flow.
        let br = Branch::line(1, 2, 0.0, 0.1, 0.0, 0.0);
        let y = br.admittance();
        let (wi, wj, wr, wimag) = (1.0, 1.0, 1.0, 0.0);
        let pij = y.gii * wi + y.gij * wr + y.bij * wimag;
        let qij = -y.bii * wi - y.bij * wr + y.gij * wimag;
        let pji = y.gjj * wj + y.gji * wr - y.bji * wimag;
        assert!(pij.abs() < 1e-12);
        assert!(qij.abs() < 1e-12);
        assert!(pji.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero impedance")]
    fn zero_impedance_panics() {
        let br = Branch::line(1, 2, 0.0, 0.0, 0.0, 0.0);
        let _ = br.series_admittance();
    }

    #[test]
    fn tap_ratio_default_is_one() {
        assert_eq!(simple_line().tap_ratio(), 1.0);
    }
}
