//! The compiled, per-unit network representation used by the solvers.
//!
//! A [`Case`] is the raw MATPOWER-style record set; a [`Network`] is the
//! validated, internally-indexed, per-unit view that the ADMM solver and the
//! interior-point baseline consume. Compilation performs:
//!
//! * external-to-internal bus index mapping,
//! * removal of out-of-service components,
//! * per-unit conversion of loads, shunts, limits and cost curves,
//! * branch admittance computation,
//! * adjacency construction (generators at a bus, branches touching a bus),
//! * connectivity validation from the reference bus.

use crate::branch::{Branch, BranchAdmittance};
use crate::bus::{Bus, BusType};
use crate::error::GridError;
use crate::generator::Generator;
use crate::perunit;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Raw case data in MATPOWER conventions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Case {
    /// Case name (for reporting).
    pub name: String,
    /// System MVA base.
    pub base_mva: f64,
    /// Bus records.
    pub buses: Vec<Bus>,
    /// Generator records.
    pub generators: Vec<Generator>,
    /// Branch records.
    pub branches: Vec<Branch>,
}

impl Case {
    /// Total real load (MW) of in-service buses.
    pub fn total_load_mw(&self) -> f64 {
        self.buses
            .iter()
            .filter(|b| b.in_service())
            .map(|b| b.pd)
            .sum()
    }

    /// Total in-service generation capacity (MW).
    pub fn total_capacity_mw(&self) -> f64 {
        self.generators.iter().map(|g| g.capacity()).sum()
    }

    /// Compile the case into a per-unit [`Network`].
    pub fn compile(&self) -> Result<Network, GridError> {
        Network::from_case(self)
    }

    /// Scale every bus load by `factor` (used by the load-tracking horizon).
    pub fn scale_load(&self, factor: f64) -> Case {
        let mut c = self.clone();
        for b in &mut c.buses {
            b.pd *= factor;
            b.qd *= factor;
        }
        c
    }
}

/// One end of a branch as seen from a bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchEnd {
    /// The bus is the branch's from-side.
    From,
    /// The bus is the branch's to-side.
    To,
}

/// Compiled per-unit network. All powers, admittances and ratings are per
/// unit on [`Network::base_mva`]; cost coefficients are on per-unit power so
/// objective values stay in $/hr. Indices are dense and 0-based.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    /// Case name.
    pub name: String,
    /// System MVA base.
    pub base_mva: f64,

    // ---- buses ----
    /// Number of buses.
    pub nbus: usize,
    /// External id of each internal bus index.
    pub bus_id: Vec<usize>,
    /// Real load (p.u.).
    pub pd: Vec<f64>,
    /// Reactive load (p.u.).
    pub qd: Vec<f64>,
    /// Shunt conductance (p.u.).
    pub gs: Vec<f64>,
    /// Shunt susceptance (p.u.).
    pub bs: Vec<f64>,
    /// Minimum voltage magnitude (p.u.).
    pub vmin: Vec<f64>,
    /// Maximum voltage magnitude (p.u.).
    pub vmax: Vec<f64>,
    /// Index of the reference bus.
    pub ref_bus: usize,

    // ---- generators ----
    /// Number of in-service generators.
    pub ngen: usize,
    /// Internal bus index of each generator.
    pub gen_bus: Vec<usize>,
    /// Minimum real power (p.u.).
    pub pmin: Vec<f64>,
    /// Maximum real power (p.u.).
    pub pmax: Vec<f64>,
    /// Minimum reactive power (p.u.).
    pub qmin: Vec<f64>,
    /// Maximum reactive power (p.u.).
    pub qmax: Vec<f64>,
    /// Quadratic cost coefficient on per-unit power ($/hr / p.u.^2).
    pub cost_c2: Vec<f64>,
    /// Linear cost coefficient on per-unit power ($/hr / p.u.).
    pub cost_c1: Vec<f64>,
    /// Constant cost coefficient ($/hr).
    pub cost_c0: Vec<f64>,

    // ---- branches ----
    /// Number of in-service branches.
    pub nbranch: usize,
    /// Internal from-bus index of each branch.
    pub br_from: Vec<usize>,
    /// Internal to-bus index of each branch.
    pub br_to: Vec<usize>,
    /// Admittance coefficients of each branch.
    pub br_y: Vec<BranchAdmittance>,
    /// Apparent-power rating (p.u.); `f64::INFINITY` when unlimited.
    pub rate_a: Vec<f64>,
    /// Minimum angle difference (radians).
    pub angmin: Vec<f64>,
    /// Maximum angle difference (radians).
    pub angmax: Vec<f64>,

    // ---- adjacency ----
    /// Generators attached to each bus.
    pub gens_at_bus: Vec<Vec<usize>>,
    /// Branches incident to each bus, together with which end touches it.
    pub branches_at_bus: Vec<Vec<(usize, BranchEnd)>>,
}

impl Network {
    /// Compile a raw [`Case`].
    pub fn from_case(case: &Case) -> Result<Network, GridError> {
        if case.base_mva <= 0.0 {
            return Err(GridError::Invalid(format!(
                "base MVA must be positive, got {}",
                case.base_mva
            )));
        }
        if case.buses.is_empty() {
            return Err(GridError::Invalid("case has no buses".into()));
        }
        if case.generators.is_empty() {
            return Err(GridError::Invalid("case has no generators".into()));
        }
        let base = case.base_mva;

        // Bus indexing (skip isolated buses).
        let mut bus_index: HashMap<usize, usize> = HashMap::new();
        let mut bus_id = Vec::new();
        let mut pd = Vec::new();
        let mut qd = Vec::new();
        let mut gs = Vec::new();
        let mut bs = Vec::new();
        let mut vmin = Vec::new();
        let mut vmax = Vec::new();
        let mut ref_bus = None;
        for b in case.buses.iter().filter(|b| b.in_service()) {
            if bus_index.insert(b.id, bus_id.len()).is_some() {
                return Err(GridError::Invalid(format!("duplicate bus id {}", b.id)));
            }
            if b.vmin <= 0.0 || b.vmax < b.vmin {
                return Err(GridError::Invalid(format!(
                    "bus {} has invalid voltage limits [{}, {}]",
                    b.id, b.vmin, b.vmax
                )));
            }
            if b.bus_type == BusType::Ref && ref_bus.is_none() {
                ref_bus = Some(bus_id.len());
            }
            bus_id.push(b.id);
            pd.push(perunit::to_pu(b.pd, base));
            qd.push(perunit::to_pu(b.qd, base));
            gs.push(perunit::to_pu(b.gs, base));
            bs.push(perunit::to_pu(b.bs, base));
            vmin.push(b.vmin);
            vmax.push(b.vmax);
        }
        let nbus = bus_id.len();
        // Default the reference bus to the first generator bus if none marked.
        let ref_bus = match ref_bus {
            Some(r) => r,
            None => {
                let g = case
                    .generators
                    .iter()
                    .find(|g| g.status)
                    .ok_or_else(|| GridError::Invalid("no in-service generator".into()))?;
                *bus_index.get(&g.bus).ok_or(GridError::UnknownBus(g.bus))?
            }
        };

        // Generators.
        let mut gen_bus = Vec::new();
        let mut pmin = Vec::new();
        let mut pmax = Vec::new();
        let mut qmin = Vec::new();
        let mut qmax = Vec::new();
        let mut cost_c2 = Vec::new();
        let mut cost_c1 = Vec::new();
        let mut cost_c0 = Vec::new();
        for g in case.generators.iter().filter(|g| g.status) {
            let bi = *bus_index.get(&g.bus).ok_or(GridError::UnknownBus(g.bus))?;
            if g.pmax < g.pmin || g.qmax < g.qmin {
                return Err(GridError::Invalid(format!(
                    "generator at bus {} has inverted limits",
                    g.bus
                )));
            }
            gen_bus.push(bi);
            pmin.push(perunit::to_pu(g.pmin, base));
            pmax.push(perunit::to_pu(g.pmax, base));
            qmin.push(perunit::to_pu(g.qmin, base));
            qmax.push(perunit::to_pu(g.qmax, base));
            let (c2, c1, c0) = perunit::cost_to_pu(g.cost.c2, g.cost.c1, g.cost.c0, base);
            cost_c2.push(c2);
            cost_c1.push(c1);
            cost_c0.push(c0);
        }
        let ngen = gen_bus.len();
        if ngen == 0 {
            return Err(GridError::Invalid("no in-service generators".into()));
        }

        // Branches.
        let mut br_from = Vec::new();
        let mut br_to = Vec::new();
        let mut br_y = Vec::new();
        let mut rate_a = Vec::new();
        let mut angmin = Vec::new();
        let mut angmax = Vec::new();
        for br in case.branches.iter().filter(|b| b.status) {
            let fi = *bus_index
                .get(&br.from)
                .ok_or(GridError::UnknownBus(br.from))?;
            let ti = *bus_index.get(&br.to).ok_or(GridError::UnknownBus(br.to))?;
            if fi == ti {
                return Err(GridError::Invalid(format!(
                    "branch connects bus {} to itself",
                    br.from
                )));
            }
            br_from.push(fi);
            br_to.push(ti);
            br_y.push(br.admittance());
            rate_a.push(if br.rate_a > 0.0 {
                perunit::to_pu(br.rate_a, base)
            } else {
                f64::INFINITY
            });
            angmin.push(br.angmin.to_radians());
            angmax.push(br.angmax.to_radians());
        }
        let nbranch = br_from.len();
        if nbranch == 0 {
            return Err(GridError::Invalid("no in-service branches".into()));
        }

        // Adjacency.
        let mut gens_at_bus = vec![Vec::new(); nbus];
        for (gi, &b) in gen_bus.iter().enumerate() {
            gens_at_bus[b].push(gi);
        }
        let mut branches_at_bus = vec![Vec::new(); nbus];
        for l in 0..nbranch {
            branches_at_bus[br_from[l]].push((l, BranchEnd::From));
            branches_at_bus[br_to[l]].push((l, BranchEnd::To));
        }

        let network = Network {
            name: case.name.clone(),
            base_mva: base,
            nbus,
            bus_id,
            pd,
            qd,
            gs,
            bs,
            vmin,
            vmax,
            ref_bus,
            ngen,
            gen_bus,
            pmin,
            pmax,
            qmin,
            qmax,
            cost_c2,
            cost_c1,
            cost_c0,
            nbranch,
            br_from,
            br_to,
            br_y,
            rate_a,
            angmin,
            angmax,
            gens_at_bus,
            branches_at_bus,
        };
        network.check_connectivity()?;
        Ok(network)
    }

    /// Verify every bus is reachable from the reference bus via in-service
    /// branches.
    fn check_connectivity(&self) -> Result<(), GridError> {
        let mut seen = vec![false; self.nbus];
        let mut stack = vec![self.ref_bus];
        seen[self.ref_bus] = true;
        let mut count = 1usize;
        while let Some(b) = stack.pop() {
            for &(l, _) in &self.branches_at_bus[b] {
                for nb in [self.br_from[l], self.br_to[l]] {
                    if !seen[nb] {
                        seen[nb] = true;
                        count += 1;
                        stack.push(nb);
                    }
                }
            }
        }
        if count != self.nbus {
            Err(GridError::Disconnected {
                unreachable_buses: self.nbus - count,
            })
        } else {
            Ok(())
        }
    }

    /// Number of components in the paper's decomposition
    /// (generators + branches + buses).
    pub fn ncomponents(&self) -> usize {
        self.ngen + self.nbranch + self.nbus
    }

    /// Evaluate the total generation cost ($/hr) at per-unit outputs `pg`.
    pub fn generation_cost(&self, pg: &[f64]) -> f64 {
        assert_eq!(pg.len(), self.ngen);
        (0..self.ngen)
            .map(|g| (self.cost_c2[g] * pg[g] + self.cost_c1[g]) * pg[g] + self.cost_c0[g])
            .sum()
    }

    /// Squared line-limit (p.u.^2) for a branch, tightened by `margin`
    /// (e.g. 0.99 as in Section IV-A of the paper). Infinite ratings stay
    /// infinite.
    pub fn rate_limit_sq(&self, l: usize, margin: f64) -> f64 {
        let r = self.rate_a[l];
        if r.is_finite() {
            (margin * r) * (margin * r)
        } else {
            f64::INFINITY
        }
    }

    /// Total real load (p.u.).
    pub fn total_pd(&self) -> f64 {
        self.pd.iter().sum()
    }

    /// Degree (number of incident branches) of each bus.
    pub fn bus_degrees(&self) -> Vec<usize> {
        self.branches_at_bus.iter().map(|v| v.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    #[test]
    fn compile_case9() {
        let net = cases::case9().compile().unwrap();
        assert_eq!(net.nbus, 9);
        assert_eq!(net.ngen, 3);
        assert_eq!(net.nbranch, 9);
        assert_eq!(net.ncomponents(), 21);
        // Loads converted to p.u.
        let total = net.total_pd();
        assert!((total - 3.15).abs() < 1e-9, "total load {total}");
    }

    #[test]
    fn reference_bus_detected() {
        let net = cases::case9().compile().unwrap();
        assert_eq!(net.bus_id[net.ref_bus], 1);
    }

    #[test]
    fn adjacency_is_consistent() {
        let net = cases::case9().compile().unwrap();
        let mut branch_slots = 0;
        for (b, list) in net.branches_at_bus.iter().enumerate() {
            for &(l, end) in list {
                match end {
                    BranchEnd::From => assert_eq!(net.br_from[l], b),
                    BranchEnd::To => assert_eq!(net.br_to[l], b),
                }
                branch_slots += 1;
            }
        }
        assert_eq!(branch_slots, 2 * net.nbranch);
        for (b, list) in net.gens_at_bus.iter().enumerate() {
            for &g in list {
                assert_eq!(net.gen_bus[g], b);
            }
        }
    }

    #[test]
    fn disconnected_network_rejected() {
        let mut case = cases::case9();
        // Remove all branches touching bus 9 -> disconnects it.
        case.branches.retain(|b| b.from != 9 && b.to != 9);
        let err = case.compile().unwrap_err();
        assert!(matches!(err, GridError::Disconnected { .. }));
    }

    #[test]
    fn unknown_generator_bus_rejected() {
        let mut case = cases::case9();
        case.generators[0].bus = 999;
        assert!(matches!(
            case.compile().unwrap_err(),
            GridError::UnknownBus(999)
        ));
    }

    #[test]
    fn duplicate_bus_id_rejected() {
        let mut case = cases::case9();
        let dup = case.buses[0].clone();
        case.buses.push(dup);
        assert!(matches!(case.compile().unwrap_err(), GridError::Invalid(_)));
    }

    #[test]
    fn generation_cost_matches_manual_sum() {
        let net = cases::case9().compile().unwrap();
        let pg = vec![0.9, 1.3, 0.8];
        let mut expected = 0.0;
        for (g, &p) in pg.iter().enumerate() {
            expected += net.cost_c2[g] * p * p + net.cost_c1[g] * p + net.cost_c0[g];
        }
        assert!((net.generation_cost(&pg) - expected).abs() < 1e-9);
    }

    #[test]
    fn rate_limit_tightening() {
        let net = cases::case9().compile().unwrap();
        let l = 0;
        let full = net.rate_limit_sq(l, 1.0);
        let tight = net.rate_limit_sq(l, 0.99);
        assert!(tight < full);
        assert!((tight / full - 0.9801).abs() < 1e-12);
    }

    #[test]
    fn scale_load_scales_both_components() {
        let case = cases::case9();
        let scaled = case.scale_load(1.05);
        assert!((scaled.total_load_mw() - case.total_load_mw() * 1.05).abs() < 1e-9);
    }

    #[test]
    fn out_of_service_components_dropped() {
        let mut case = cases::case9();
        case.branches[1].status = false; // branch 4-5
                                         // Removing branch 4-5 keeps the ring connected.
        let net = case.compile().unwrap();
        assert_eq!(net.nbranch, 8);
    }

    #[test]
    fn zero_rating_becomes_infinite() {
        let mut case = cases::case9();
        case.branches[0].rate_a = 0.0;
        let net = case.compile().unwrap();
        assert!(net.rate_a[0].is_infinite());
        assert!(net.rate_limit_sq(0, 0.99).is_infinite());
    }
}
