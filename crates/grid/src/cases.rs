//! Embedded reference cases.
//!
//! These are small, self-contained test systems used by unit tests,
//! integration tests and the quickstart example. `case9` and `case14` follow
//! the topology and parameter magnitudes of the classic WSCC 9-bus and IEEE
//! 14-bus systems (as distributed with MATPOWER); they are *reconstructions*
//! for testing, not byte-exact copies of the MATPOWER files — correctness
//! tests therefore compare the two solvers against each other rather than
//! against published objective values.

use crate::branch::Branch;
use crate::bus::{Bus, BusType};
use crate::generator::{GenCost, Generator};
use crate::network::Case;

fn bus(id: usize, t: BusType, pd: f64, qd: f64) -> Bus {
    Bus {
        id,
        bus_type: t,
        pd,
        qd,
        gs: 0.0,
        bs: 0.0,
        area: 1,
        vm: 1.0,
        va: 0.0,
        base_kv: 345.0,
        zone: 1,
        vmax: 1.1,
        vmin: 0.9,
    }
}

fn gen(bus: usize, pmin: f64, pmax: f64, qmin: f64, qmax: f64, cost: GenCost) -> Generator {
    Generator {
        bus,
        pg: 0.5 * (pmin + pmax),
        qg: 0.0,
        qmax,
        qmin,
        vg: 1.0,
        mbase: 100.0,
        status: true,
        pmax,
        pmin,
        cost,
    }
}

/// A minimal two-bus system: one generator feeding one load over a single
/// line. The smallest case on which every solver code path (generator, bus,
/// branch subproblems; balance constraints; line limit) is exercised.
pub fn two_bus() -> Case {
    Case {
        name: "two_bus".into(),
        base_mva: 100.0,
        buses: vec![
            bus(1, BusType::Ref, 0.0, 0.0),
            bus(2, BusType::Pq, 80.0, 20.0),
        ],
        generators: vec![gen(
            1,
            0.0,
            200.0,
            -100.0,
            100.0,
            GenCost {
                c2: 0.02,
                c1: 20.0,
                c0: 0.0,
            },
        )],
        branches: vec![Branch::line(1, 2, 0.01, 0.08, 0.02, 150.0)],
    }
}

/// A 5-bus, 3-generator meshed system (PJM-style 5-bus test case layout).
pub fn case5() -> Case {
    Case {
        name: "case5".into(),
        base_mva: 100.0,
        buses: vec![
            bus(1, BusType::Pv, 0.0, 0.0),
            bus(2, BusType::Pq, 300.0, 98.61),
            bus(3, BusType::Pq, 300.0, 98.61),
            bus(4, BusType::Ref, 400.0, 131.47),
            bus(5, BusType::Pv, 0.0, 0.0),
        ],
        generators: vec![
            gen(
                1,
                0.0,
                210.0,
                -127.5,
                127.5,
                GenCost {
                    c2: 0.0,
                    c1: 14.0,
                    c0: 0.0,
                },
            ),
            gen(
                1,
                0.0,
                170.0,
                -127.5,
                127.5,
                GenCost {
                    c2: 0.0,
                    c1: 15.0,
                    c0: 0.0,
                },
            ),
            gen(
                3,
                0.0,
                520.0,
                -390.0,
                390.0,
                GenCost {
                    c2: 0.0,
                    c1: 30.0,
                    c0: 0.0,
                },
            ),
            gen(
                4,
                0.0,
                200.0,
                -150.0,
                150.0,
                GenCost {
                    c2: 0.0,
                    c1: 40.0,
                    c0: 0.0,
                },
            ),
            gen(
                5,
                0.0,
                600.0,
                -450.0,
                450.0,
                GenCost {
                    c2: 0.0,
                    c1: 10.0,
                    c0: 0.0,
                },
            ),
        ],
        branches: vec![
            Branch::line(1, 2, 0.00281, 0.0281, 0.00712, 400.0),
            Branch::line(1, 4, 0.00304, 0.0304, 0.00658, 426.0),
            Branch::line(1, 5, 0.00064, 0.0064, 0.03126, 426.0),
            Branch::line(2, 3, 0.00108, 0.0108, 0.01852, 426.0),
            Branch::line(3, 4, 0.00297, 0.0297, 0.00674, 426.0),
            Branch::line(4, 5, 0.00297, 0.0297, 0.00674, 240.0),
        ],
    }
}

/// WSCC 9-bus, 3-generator, 9-branch system.
pub fn case9() -> Case {
    Case {
        name: "case9".into(),
        base_mva: 100.0,
        buses: vec![
            bus(1, BusType::Ref, 0.0, 0.0),
            bus(2, BusType::Pv, 0.0, 0.0),
            bus(3, BusType::Pv, 0.0, 0.0),
            bus(4, BusType::Pq, 0.0, 0.0),
            bus(5, BusType::Pq, 90.0, 30.0),
            bus(6, BusType::Pq, 0.0, 0.0),
            bus(7, BusType::Pq, 100.0, 35.0),
            bus(8, BusType::Pq, 0.0, 0.0),
            bus(9, BusType::Pq, 125.0, 50.0),
        ],
        generators: vec![
            gen(
                1,
                10.0,
                250.0,
                -300.0,
                300.0,
                GenCost {
                    c2: 0.11,
                    c1: 5.0,
                    c0: 150.0,
                },
            ),
            gen(
                2,
                10.0,
                300.0,
                -300.0,
                300.0,
                GenCost {
                    c2: 0.085,
                    c1: 1.2,
                    c0: 600.0,
                },
            ),
            gen(
                3,
                10.0,
                270.0,
                -300.0,
                300.0,
                GenCost {
                    c2: 0.1225,
                    c1: 1.0,
                    c0: 335.0,
                },
            ),
        ],
        branches: vec![
            Branch::line(1, 4, 0.0001, 0.0576, 0.0, 250.0),
            Branch::line(4, 5, 0.017, 0.092, 0.158, 250.0),
            Branch::line(5, 6, 0.039, 0.17, 0.358, 150.0),
            Branch::line(3, 6, 0.0001, 0.0586, 0.0, 300.0),
            Branch::line(6, 7, 0.0119, 0.1008, 0.209, 150.0),
            Branch::line(7, 8, 0.0085, 0.072, 0.149, 250.0),
            Branch::line(8, 2, 0.0001, 0.0625, 0.0, 250.0),
            Branch::line(8, 9, 0.032, 0.161, 0.306, 250.0),
            Branch::line(9, 4, 0.01, 0.085, 0.176, 250.0),
        ],
    }
}

/// An IEEE 14-bus style system: 14 buses, 5 generators/synchronous
/// condensers, 20 branches.
pub fn case14() -> Case {
    let mut buses = vec![
        bus(1, BusType::Ref, 0.0, 0.0),
        bus(2, BusType::Pv, 21.7, 12.7),
        bus(3, BusType::Pv, 94.2, 19.0),
        bus(4, BusType::Pq, 47.8, -3.9),
        bus(5, BusType::Pq, 7.6, 1.6),
        bus(6, BusType::Pv, 11.2, 7.5),
        bus(7, BusType::Pq, 0.0, 0.0),
        bus(8, BusType::Pv, 0.0, 0.0),
        bus(9, BusType::Pq, 29.5, 16.6),
        bus(10, BusType::Pq, 9.0, 5.8),
        bus(11, BusType::Pq, 3.5, 1.8),
        bus(12, BusType::Pq, 6.1, 1.6),
        bus(13, BusType::Pq, 13.5, 5.8),
        bus(14, BusType::Pq, 14.9, 5.0),
    ];
    // Bus 9 has a shunt capacitor in the IEEE 14-bus system.
    buses[8].bs = 19.0;

    Case {
        name: "case14".into(),
        base_mva: 100.0,
        buses,
        generators: vec![
            gen(
                1,
                0.0,
                332.4,
                -50.0,
                100.0,
                GenCost {
                    c2: 0.043,
                    c1: 20.0,
                    c0: 0.0,
                },
            ),
            gen(
                2,
                0.0,
                140.0,
                -40.0,
                50.0,
                GenCost {
                    c2: 0.25,
                    c1: 20.0,
                    c0: 0.0,
                },
            ),
            gen(
                3,
                0.0,
                100.0,
                0.0,
                40.0,
                GenCost {
                    c2: 0.01,
                    c1: 40.0,
                    c0: 0.0,
                },
            ),
            gen(
                6,
                0.0,
                100.0,
                -6.0,
                24.0,
                GenCost {
                    c2: 0.01,
                    c1: 40.0,
                    c0: 0.0,
                },
            ),
            gen(
                8,
                0.0,
                100.0,
                -6.0,
                24.0,
                GenCost {
                    c2: 0.01,
                    c1: 40.0,
                    c0: 0.0,
                },
            ),
        ],
        branches: vec![
            Branch::line(1, 2, 0.01938, 0.05917, 0.0528, 472.0),
            Branch::line(1, 5, 0.05403, 0.22304, 0.0492, 128.0),
            Branch::line(2, 3, 0.04699, 0.19797, 0.0438, 145.0),
            Branch::line(2, 4, 0.05811, 0.17632, 0.034, 158.0),
            Branch::line(2, 5, 0.05695, 0.17388, 0.0346, 161.0),
            Branch::line(3, 4, 0.06701, 0.17103, 0.0128, 160.0),
            Branch::line(4, 5, 0.01335, 0.04211, 0.0, 302.0),
            {
                let mut b = Branch::line(4, 7, 0.0001, 0.20912, 0.0, 175.0);
                b.tap = 0.978;
                b
            },
            {
                let mut b = Branch::line(4, 9, 0.0001, 0.55618, 0.0, 175.0);
                b.tap = 0.969;
                b
            },
            {
                let mut b = Branch::line(5, 6, 0.0001, 0.25202, 0.0, 175.0);
                b.tap = 0.932;
                b
            },
            Branch::line(6, 11, 0.09498, 0.1989, 0.0, 175.0),
            Branch::line(6, 12, 0.12291, 0.25581, 0.0, 175.0),
            Branch::line(6, 13, 0.06615, 0.13027, 0.0, 175.0),
            Branch::line(7, 8, 0.0001, 0.17615, 0.0, 175.0),
            Branch::line(7, 9, 0.0001, 0.11001, 0.0, 175.0),
            Branch::line(9, 10, 0.03181, 0.0845, 0.0, 175.0),
            Branch::line(9, 14, 0.12711, 0.27038, 0.0, 175.0),
            Branch::line(10, 11, 0.08205, 0.19207, 0.0, 175.0),
            Branch::line(12, 13, 0.22092, 0.19988, 0.0, 175.0),
            Branch::line(13, 14, 0.17093, 0.34802, 0.0, 175.0),
        ],
    }
}

/// A 30-bus style meshed system built from the synthetic generator with a
/// fixed seed (used when a mid-size deterministic case is needed in tests).
pub fn case30_like() -> Case {
    crate::synthetic::SyntheticSpec {
        name: "case30_like".into(),
        nbus: 30,
        ngen: 6,
        nbranch: 41,
        seed: 30,
        ..Default::default()
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_embedded_cases_compile() {
        for case in [two_bus(), case5(), case9(), case14(), case30_like()] {
            let net = case.compile().expect("case should compile");
            assert!(net.nbus >= 2);
            assert!(net.ngen >= 1);
            assert!(net.nbranch >= 1);
        }
    }

    #[test]
    fn case9_dimensions() {
        let c = case9();
        assert_eq!(c.buses.len(), 9);
        assert_eq!(c.generators.len(), 3);
        assert_eq!(c.branches.len(), 9);
        assert!((c.total_load_mw() - 315.0).abs() < 1e-9);
    }

    #[test]
    fn case14_dimensions() {
        let c = case14();
        assert_eq!(c.buses.len(), 14);
        assert_eq!(c.generators.len(), 5);
        assert_eq!(c.branches.len(), 20);
    }

    #[test]
    fn capacity_exceeds_load() {
        for case in [two_bus(), case5(), case9(), case14(), case30_like()] {
            assert!(
                case.total_capacity_mw() > case.total_load_mw(),
                "{} must have enough generation",
                case.name
            );
        }
    }

    #[test]
    fn case30_like_is_deterministic() {
        let a = case30_like();
        let b = case30_like();
        assert_eq!(a, b);
    }
}
