//! Generator and generation-cost records (MATPOWER conventions).

use serde::{Deserialize, Serialize};

/// Polynomial generation cost `c2 * p^2 + c1 * p + c0` with `p` in MW and the
/// cost in $/hr. Piecewise-linear MATPOWER costs are converted to a quadratic
/// least-squares fit by the parser, which is the same simplification the
/// paper's component decomposition assumes (generator subproblems need a
/// strongly convex quadratic objective for the closed-form update (6)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenCost {
    /// Quadratic coefficient ($/MW^2 h).
    pub c2: f64,
    /// Linear coefficient ($/MWh).
    pub c1: f64,
    /// Constant coefficient ($/hr).
    pub c0: f64,
}

impl GenCost {
    /// A purely linear cost.
    pub fn linear(c1: f64) -> Self {
        GenCost {
            c2: 0.0,
            c1,
            c0: 0.0,
        }
    }

    /// Evaluate the cost at a real-power output in MW.
    pub fn eval(&self, p_mw: f64) -> f64 {
        (self.c2 * p_mw + self.c1) * p_mw + self.c0
    }

    /// Derivative of the cost with respect to MW output.
    pub fn deriv(&self, p_mw: f64) -> f64 {
        2.0 * self.c2 * p_mw + self.c1
    }
}

impl Default for GenCost {
    fn default() -> Self {
        GenCost {
            c2: 0.01,
            c1: 10.0,
            c0: 0.0,
        }
    }
}

/// A single generator record. Powers in MW/MVAr.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Generator {
    /// External id of the bus this generator is attached to.
    pub bus: usize,
    /// Initial real power output (MW).
    pub pg: f64,
    /// Initial reactive power output (MVAr).
    pub qg: f64,
    /// Maximum reactive power output (MVAr).
    pub qmax: f64,
    /// Minimum reactive power output (MVAr).
    pub qmin: f64,
    /// Voltage magnitude setpoint (p.u.).
    pub vg: f64,
    /// Machine MVA base.
    pub mbase: f64,
    /// In-service flag.
    pub status: bool,
    /// Maximum real power output (MW).
    pub pmax: f64,
    /// Minimum real power output (MW).
    pub pmin: f64,
    /// Generation cost curve.
    pub cost: GenCost,
}

impl Generator {
    /// Convenience constructor with symmetric reactive limits and a default
    /// cost curve.
    pub fn new(bus: usize, pmin: f64, pmax: f64, cost: GenCost) -> Self {
        Generator {
            bus,
            pg: 0.5 * (pmin + pmax),
            qg: 0.0,
            qmax: 0.75 * pmax,
            qmin: -0.75 * pmax,
            vg: 1.0,
            mbase: 100.0,
            status: true,
            pmax,
            pmin,
            cost,
        }
    }

    /// Real-power capacity (MW) contributed when in service.
    pub fn capacity(&self) -> f64 {
        if self.status {
            self.pmax
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_eval_matches_polynomial() {
        let c = GenCost {
            c2: 0.1,
            c1: 5.0,
            c0: 150.0,
        };
        let p = 37.5;
        let expected = 0.1 * p * p + 5.0 * p + 150.0;
        assert!((c.eval(p) - expected).abs() < 1e-12);
    }

    #[test]
    fn cost_deriv_is_gradient_of_eval() {
        let c = GenCost {
            c2: 0.085,
            c1: 1.2,
            c0: 600.0,
        };
        let p = 120.0;
        let h = 1e-6;
        let fd = (c.eval(p + h) - c.eval(p - h)) / (2.0 * h);
        assert!((c.deriv(p) - fd).abs() < 1e-5);
    }

    #[test]
    fn linear_cost_has_zero_quadratic_term() {
        let c = GenCost::linear(25.0);
        assert_eq!(c.c2, 0.0);
        assert_eq!(c.eval(10.0), 250.0);
    }

    #[test]
    fn generator_capacity_respects_status() {
        let mut g = Generator::new(3, 10.0, 250.0, GenCost::default());
        assert_eq!(g.capacity(), 250.0);
        g.status = false;
        assert_eq!(g.capacity(), 0.0);
    }

    #[test]
    fn generator_new_midpoint_start() {
        let g = Generator::new(1, 10.0, 110.0, GenCost::default());
        assert!((g.pg - 60.0).abs() < 1e-12);
        assert!(g.qmin < 0.0 && g.qmax > 0.0);
    }
}
