//! Scenario fingerprints for similarity-keyed solution reuse.
//!
//! A [`ScenarioFingerprint`] condenses a compiled [`Network`] into the two
//! pieces a warm-start solution store needs:
//!
//! * the **per-bus load vector** (`[pd; qd]`, p.u.) — the coordinates that
//!   nearest-neighbor lookup measures distances over, because the paper's
//!   tracking economics (Kim & Kim, ICPP 2022) hinge on *load drift*: a
//!   solved operating point is a good starting point exactly when the loads
//!   moved a little,
//! * a **structure signature** — a deterministic hash of everything that is
//!   *not* load: dimensions, topology (branch endpoints), branch electrical
//!   parameters and ratings, generator bounds and costs, bus voltage limits
//!   and shunts. Two networks are warm-start compatible only when their
//!   signatures match: an N−1 outage opens a branch electrically, which
//!   changes its admittance and therefore the signature, so outage scenarios
//!   form their own equivalence classes and a store never seeds a solve from
//!   an incompatible active set.
//!
//! Fingerprinting is exact and reproducible: the same `Network` always
//! produces the same fingerprint (bitwise — the hash runs over the raw f64
//! bits with a fixed FNV-1a state, never through platform- or run-seeded
//! hashers), which the property suite pins.

use crate::network::Network;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A running FNV-1a hash over heterogeneous scalar streams. Deterministic
/// across processes and platforms, unlike `DefaultHasher`'s unspecified
/// keys.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_f64s(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }

    fn write_usizes(&mut self, vs: &[usize]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_usize(v);
        }
    }
}

/// The similarity key of one scenario: its load coordinates plus the
/// structure signature partitioning the store into warm-start-compatible
/// equivalence classes. See the [module docs](self) for the rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFingerprint {
    /// Load coordinates: `[pd[0..nbus], qd[0..nbus]]` in p.u. Distances
    /// between fingerprints are measured over this vector.
    pub loads: Vec<f64>,
    /// Hash of everything except the loads: dimensions, topology, branch
    /// admittances/ratings/angle limits, generator bounds/costs, bus
    /// voltage limits/shunts, and the MVA base.
    pub structure: u64,
}

impl ScenarioFingerprint {
    /// Fingerprint a compiled network.
    pub fn of_network(net: &Network) -> ScenarioFingerprint {
        let mut loads = Vec::with_capacity(2 * net.nbus);
        loads.extend_from_slice(&net.pd);
        loads.extend_from_slice(&net.qd);

        let mut h = Fnv::new();
        h.write_usize(net.nbus);
        h.write_usize(net.ngen);
        h.write_usize(net.nbranch);
        h.write_f64(net.base_mva);
        h.write_usize(net.ref_bus);
        // Buses: everything but pd/qd.
        h.write_f64s(&net.gs);
        h.write_f64s(&net.bs);
        h.write_f64s(&net.vmin);
        h.write_f64s(&net.vmax);
        // Generators.
        h.write_usizes(&net.gen_bus);
        h.write_f64s(&net.pmin);
        h.write_f64s(&net.pmax);
        h.write_f64s(&net.qmin);
        h.write_f64s(&net.qmax);
        h.write_f64s(&net.cost_c2);
        h.write_f64s(&net.cost_c1);
        h.write_f64s(&net.cost_c0);
        // Branches: topology and electrical parameters. An outage drives the
        // series admittance to ~0 and lifts the rating, so it lands here.
        h.write_usizes(&net.br_from);
        h.write_usizes(&net.br_to);
        h.write_usize(net.br_y.len());
        for y in &net.br_y {
            h.write_f64(y.gii);
            h.write_f64(y.bii);
            h.write_f64(y.gij);
            h.write_f64(y.bij);
            h.write_f64(y.gji);
            h.write_f64(y.bji);
            h.write_f64(y.gjj);
            h.write_f64(y.bjj);
        }
        h.write_f64s(&net.rate_a);
        h.write_f64s(&net.angmin);
        h.write_f64s(&net.angmax);

        ScenarioFingerprint {
            loads,
            structure: h.0,
        }
    }

    /// Dimension-normalized L2 distance between two load vectors: the RMS
    /// per-coordinate load difference in p.u.,
    /// `sqrt(Σ (aᵢ − bᵢ)² / n)`. This is a metric (a scaled L2 norm), so
    /// triangle-inequality pruning in vantage indexes is sound, and it keeps
    /// load *magnitude* — two uniform ramps at 0.9× and 1.1× are far apart,
    /// as warm-start quality demands, where a unit-normalized distance would
    /// collapse them.
    ///
    /// Panics when the structures differ (distances across equivalence
    /// classes are meaningless; a store never compares across them).
    pub fn distance(&self, other: &ScenarioFingerprint) -> f64 {
        assert_eq!(
            self.structure, other.structure,
            "fingerprint distance across different structures"
        );
        rms_distance(&self.loads, other.loads.as_slice())
    }

    /// RMS magnitude of the load vector — its distance to the zero vector,
    /// used as the vantage coordinate by the store's bucket index.
    pub fn rms_norm(&self) -> f64 {
        rms_distance(&self.loads, &vec![0.0; self.loads.len()])
    }
}

/// `sqrt(Σ (aᵢ − bᵢ)² / n)` — the dimension-normalized L2 metric shared by
/// [`ScenarioFingerprint::distance`] and the store's index internals.
pub fn rms_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "load vectors of different dimension");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;
    use crate::scenario::ScenarioSet;

    #[test]
    fn identical_networks_fingerprint_identically() {
        let a = ScenarioFingerprint::of_network(&cases::case9().compile().unwrap());
        let b = ScenarioFingerprint::of_network(&cases::case9().compile().unwrap());
        assert_eq!(a, b);
        assert_eq!(a.structure, b.structure);
    }

    #[test]
    fn load_changes_move_the_loads_not_the_structure() {
        let base = cases::case9();
        let a = ScenarioFingerprint::of_network(&base.compile().unwrap());
        let b = ScenarioFingerprint::of_network(&base.scale_load(1.05).compile().unwrap());
        assert_eq!(a.structure, b.structure, "load scaling is not structural");
        assert_ne!(a.loads, b.loads);
        assert!(a.distance(&b) > 0.0);
        assert_eq!(a.distance(&b).to_bits(), b.distance(&a).to_bits());
    }

    #[test]
    fn outages_change_the_structure_signature() {
        let base = cases::case9();
        let nominal = ScenarioFingerprint::of_network(&base.compile().unwrap());
        let set = ScenarioSet::branch_outages(base.clone(), 3);
        let mut sigs = vec![nominal.structure];
        for net in set.networks().unwrap() {
            let fp = ScenarioFingerprint::of_network(&net);
            assert_eq!(fp.loads, nominal.loads, "outages keep nominal load");
            sigs.push(fp.structure);
        }
        // The nominal case and each distinct outage hash to distinct classes.
        sigs.sort_unstable();
        sigs.dedup();
        assert_eq!(sigs.len(), 1 + set.len());
    }

    #[test]
    fn distance_is_the_rms_load_delta() {
        let a = ScenarioFingerprint {
            loads: vec![1.0, 2.0, 3.0, 4.0],
            structure: 7,
        };
        let b = ScenarioFingerprint {
            loads: vec![1.0, 2.0, 3.0, 2.0],
            structure: 7,
        };
        // One coordinate off by 2 over n=4: sqrt(4/4) = 1.
        assert_eq!(a.distance(&b), 1.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "different structures")]
    fn cross_structure_distance_panics() {
        let a = ScenarioFingerprint {
            loads: vec![1.0],
            structure: 1,
        };
        let b = ScenarioFingerprint {
            loads: vec![1.0],
            structure: 2,
        };
        let _ = a.distance(&b);
    }
}
