//! Scenario-set generation for batched multi-scenario solves.
//!
//! A *scenario* is a perturbation of one base case that leaves the network's
//! dimensions and topology untouched — the property the batched ADMM driver
//! needs so that all `K` scenarios share one constraint layout and can run
//! through scenario-major buffers in single kernel launches. Three scenario
//! families cover the common studies:
//!
//! * **load ramps** — one uniform load multiplier per scenario,
//! * **per-bus perturbations** — independent random multipliers per bus
//!   (deterministic in the seed),
//! * **single-branch outages** — N−1 contingencies. An outage keeps the
//!   branch record in place (so branch indexing and the consensus layout are
//!   unchanged) and opens the line electrically: series impedance driven to
//!   `OUTAGE_REACTANCE`, charging removed, rating lifted, so the branch
//!   carries ~zero flow and never binds.

use crate::error::GridError;
use crate::network::{Case, Network};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Series reactance of an opened branch: large enough that the admittance
/// (≈ 1/x) is numerically negligible against real line admittances (~1–100),
/// small enough to stay far from f64 overflow in the admittance math.
pub const OUTAGE_REACTANCE: f64 = 1e7;

/// One scenario: per-bus load multipliers plus an optional branch outage.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used as the derived case's name).
    pub name: String,
    /// Per-bus multiplier applied to both `pd` and `qd`; length must equal
    /// the base case's bus count.
    pub bus_load_scale: Vec<f64>,
    /// Index (into the base case's branch list) of a branch taken out of
    /// service, if any.
    pub outage: Option<usize>,
}

impl Scenario {
    /// A scenario scaling every bus load by the same factor.
    pub fn uniform(name: impl Into<String>, nbus: usize, factor: f64) -> Scenario {
        Scenario {
            name: name.into(),
            bus_load_scale: vec![factor; nbus],
            outage: None,
        }
    }

    /// A nominal-load scenario with branch `l` out of service.
    pub fn branch_outage(name: impl Into<String>, nbus: usize, l: usize) -> Scenario {
        Scenario {
            name: name.into(),
            bus_load_scale: vec![1.0; nbus],
            outage: Some(l),
        }
    }

    /// Apply the scenario to a base case, producing a derived case with
    /// identical dimensions and topology.
    pub fn apply(&self, base: &Case) -> Case {
        assert_eq!(
            self.bus_load_scale.len(),
            base.buses.len(),
            "scenario '{}' has {} bus multipliers for a {}-bus case",
            self.name,
            self.bus_load_scale.len(),
            base.buses.len()
        );
        let mut case = base.clone();
        case.name = self.name.clone();
        for (bus, &f) in case.buses.iter_mut().zip(&self.bus_load_scale) {
            bus.pd *= f;
            bus.qd *= f;
        }
        if let Some(l) = self.outage {
            assert!(
                l < case.branches.len(),
                "scenario '{}' outages branch {} of {}",
                self.name,
                l,
                case.branches.len()
            );
            let br = &mut case.branches[l];
            br.r = 0.0;
            br.x = OUTAGE_REACTANCE;
            br.b = 0.0;
            br.rate_a = 0.0; // unlimited: the open line must never bind
            br.tap = 0.0;
            br.shift = 0.0;
        }
        case
    }
}

/// A base case plus the scenarios derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSet {
    /// The base case every scenario perturbs.
    pub base: Case,
    /// The scenarios, in solve order.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// `k` scenarios ramping the uniform load multiplier linearly from `lo`
    /// to `hi` (inclusive); `k = 1` uses `lo`.
    pub fn load_ramp(base: Case, k: usize, lo: f64, hi: f64) -> ScenarioSet {
        assert!(k > 0, "need at least one scenario");
        let nbus = base.buses.len();
        let scenarios = (0..k)
            .map(|i| {
                let t = if k == 1 {
                    0.0
                } else {
                    i as f64 / (k - 1) as f64
                };
                let f = lo + t * (hi - lo);
                Scenario::uniform(format!("{}_ramp{:.4}", base.name, f), nbus, f)
            })
            .collect();
        ScenarioSet { base, scenarios }
    }

    /// `k` scenarios with independent per-bus load multipliers drawn
    /// uniformly from `[1 − sigma, 1 + sigma]`. Deterministic in `seed`.
    pub fn perturbed_loads(base: Case, k: usize, sigma: f64, seed: u64) -> ScenarioSet {
        assert!(k > 0, "need at least one scenario");
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        let nbus = base.buses.len();
        let mut rng = SmallRng::seed_from_u64(seed);
        let scenarios = (0..k)
            .map(|i| Scenario {
                name: format!("{}_perturbed{}", base.name, i),
                bus_load_scale: (0..nbus)
                    .map(|_| 1.0 + rng.gen_range(-sigma..sigma))
                    .collect(),
                outage: None,
            })
            .collect();
        ScenarioSet { base, scenarios }
    }

    /// Up to `k` single-branch-outage (N−1) scenarios at nominal load,
    /// spread evenly over the eligible branches. Bridges of the base
    /// topology are skipped — outaging a bridge islands part of the system
    /// (typically a generator or load pocket), which is not a meaningful
    /// N−1 screen — so the set may hold fewer than `k` scenarios (empty if
    /// the topology is a tree).
    pub fn branch_outages(base: Case, k: usize) -> ScenarioSet {
        assert!(k > 0, "need at least one scenario");
        let nbus = base.buses.len();
        let bridge = bridges(&base);
        let eligible: Vec<usize> = (0..base.branches.len()).filter(|&l| !bridge[l]).collect();
        let k = k.min(eligible.len());
        let scenarios = (0..k)
            .map(|i| {
                let l = eligible[i * eligible.len() / k];
                Scenario::branch_outage(format!("{}_outage{}", base.name, l), nbus, l)
            })
            .collect();
        ScenarioSet { base, scenarios }
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the set holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Append another set's scenarios (same base case expected; the bases
    /// are not checked beyond the bus count asserted at `apply` time).
    pub fn extend(&mut self, other: ScenarioSet) {
        self.scenarios.extend(other.scenarios);
    }

    /// The derived cases, in scenario order.
    pub fn cases(&self) -> Vec<Case> {
        self.scenarios.iter().map(|s| s.apply(&self.base)).collect()
    }

    /// Compile every derived case into a [`Network`].
    pub fn networks(&self) -> Result<Vec<Network>, GridError> {
        self.cases().iter().map(|c| c.compile()).collect()
    }
}

/// Per-branch bridge flags of a case's topology, via an iterative low-link
/// DFS over the multigraph. Parallel circuits between the same bus pair are
/// never bridges (the DFS skips only the exact edge it entered through).
fn bridges(case: &Case) -> Vec<bool> {
    let n = case.buses.len();
    let idx: std::collections::HashMap<usize, usize> = case
        .buses
        .iter()
        .enumerate()
        .map(|(i, b)| (b.id, i))
        .collect();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (l, br) in case.branches.iter().enumerate() {
        let a = idx[&br.from];
        let b = idx[&br.to];
        adj[a].push((b, l));
        adj[b].push((a, l));
    }
    let mut tin = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut is_bridge = vec![false; case.branches.len()];
    let mut timer = 0usize;
    for root in 0..n {
        if tin[root] != usize::MAX {
            continue;
        }
        tin[root] = timer;
        low[root] = timer;
        timer += 1;
        // Frames of (node, edge entered through, next adjacency index).
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        while let Some(frame) = stack.last_mut() {
            let (v, entry_edge) = (frame.0, frame.1);
            if frame.2 < adj[v].len() {
                let (to, e) = adj[v][frame.2];
                frame.2 += 1;
                if e == entry_edge {
                    continue;
                }
                if tin[to] == usize::MAX {
                    tin[to] = timer;
                    low[to] = timer;
                    timer += 1;
                    stack.push((to, e, 0));
                } else {
                    low[v] = low[v].min(tin[to]);
                }
            } else {
                stack.pop();
                if let Some(parent) = stack.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[v]);
                    if low[v] > tin[p] {
                        is_bridge[entry_edge] = true;
                    }
                }
            }
        }
    }
    is_bridge
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    #[test]
    fn load_ramp_spans_the_requested_range() {
        let set = ScenarioSet::load_ramp(cases::case9(), 5, 0.9, 1.1);
        assert_eq!(set.len(), 5);
        assert_eq!(set.scenarios[0].bus_load_scale[0], 0.9);
        assert_eq!(set.scenarios[4].bus_load_scale[0], 1.1);
        assert!((set.scenarios[2].bus_load_scale[0] - 1.0).abs() < 1e-12);
        // Uniform within a scenario.
        for s in &set.scenarios {
            assert!(s.bus_load_scale.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn scenarios_preserve_dimensions_and_topology() {
        let base = cases::case14();
        let mut set = ScenarioSet::perturbed_loads(base.clone(), 3, 0.05, 42);
        set.extend(ScenarioSet::branch_outages(base.clone(), 3));
        let base_net = base.compile().unwrap();
        for net in set.networks().unwrap() {
            assert_eq!(net.nbus, base_net.nbus);
            assert_eq!(net.ngen, base_net.ngen);
            assert_eq!(net.nbranch, base_net.nbranch);
            assert_eq!(net.br_from, base_net.br_from);
            assert_eq!(net.br_to, base_net.br_to);
        }
    }

    #[test]
    fn perturbed_loads_are_deterministic_in_seed() {
        let a = ScenarioSet::perturbed_loads(cases::case9(), 4, 0.03, 7);
        let b = ScenarioSet::perturbed_loads(cases::case9(), 4, 0.03, 7);
        assert_eq!(a, b);
        let c = ScenarioSet::perturbed_loads(cases::case9(), 4, 0.03, 8);
        assert_ne!(a, c);
        for s in &a.scenarios {
            for &f in &s.bus_load_scale {
                assert!((0.97..=1.03).contains(&f));
            }
        }
    }

    #[test]
    fn outage_opens_the_branch_electrically() {
        let base = cases::case9();
        let set = ScenarioSet::branch_outages(base.clone(), 9);
        // case9 has 9 branches; the three generator leads are bridges and
        // are skipped, leaving the six ring branches.
        assert_eq!(set.len(), 6);
        let case = set.scenarios[0].apply(&base);
        let l = set.scenarios[0].outage.unwrap();
        let y = case.branches[l].admittance();
        assert!(y.gii.abs() < 1e-6 && y.bii.abs() < 1e-6);
        assert!(y.gij.abs() < 1e-6 && y.bij.abs() < 1e-6);
        // Loads untouched, other branches untouched.
        assert_eq!(case.buses[0].pd, base.buses[0].pd);
        assert_eq!(case.branches[l + 1], base.branches[l + 1]);
    }

    #[test]
    fn outages_never_select_bridges() {
        let base = cases::case9();
        let bridge = bridges(&base);
        // Every generator lead (the only branch at its generator bus) is a
        // bridge; ring branches are not.
        assert_eq!(bridge.iter().filter(|&&b| b).count(), 3);
        for s in &ScenarioSet::branch_outages(base, 9).scenarios {
            assert!(!bridge[s.outage.unwrap()]);
        }
    }

    #[test]
    fn tree_topology_yields_no_outage_scenarios() {
        // two_bus is a single line (a bridge): no eligible N−1 scenarios.
        let set = ScenarioSet::branch_outages(cases::two_bus(), 10);
        assert!(set.is_empty());
    }

    #[test]
    #[should_panic(expected = "bus multipliers")]
    fn wrong_multiplier_length_panics() {
        let s = Scenario::uniform("bad", 3, 1.0);
        let _ = s.apply(&cases::case9());
    }
}
