//! Scenario-set generation for batched multi-scenario solves.
//!
//! A *scenario* is a perturbation of one base case that leaves the network's
//! dimensions and topology untouched — the property the batched ADMM driver
//! needs so that all `K` scenarios share one constraint layout and can run
//! through scenario-major buffers in single kernel launches. The scenario
//! families cover the common studies:
//!
//! * **load ramps** — one uniform load multiplier per scenario,
//! * **per-bus perturbations** — independent random multipliers per bus
//!   (deterministic in the seed),
//! * **branch outages** — N−1 single-branch and N−2 branch-pair
//!   contingencies. An outage keeps the branch record in place (so branch
//!   indexing and the consensus layout are unchanged) and opens the line
//!   electrically: series impedance driven to [`OUTAGE_REACTANCE`], charging
//!   removed, rating lifted, so the branch carries ~zero flow and never
//!   binds,
//! * **generator outages** — a unit taken out of service by collapsing its
//!   active/reactive bounds to zero. The record (and therefore the variable
//!   layout) stays in place; the unit simply cannot dispatch.
//!
//! Every outage family is screened so the derived cases stay *solvable by
//! construction*: branch outages never island the network (bridges are
//! skipped for N−1; pairs are additionally connectivity-checked for N−2),
//! and generator outages keep enough remaining capacity to serve the load
//! (see [`GEN_OUTAGE_CAPACITY_MARGIN`]).

use crate::error::GridError;
use crate::network::{Case, Network};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Series reactance of an opened branch: large enough that the admittance
/// (≈ 1/x) is numerically negligible against real line admittances (~1–100),
/// small enough to stay far from f64 overflow in the admittance math.
pub const OUTAGE_REACTANCE: f64 = 1e7;

/// Minimum ratio of remaining generation capacity (Σ pmax over in-service
/// units excluding the outaged one) to total real load for a generator
/// outage to be considered: an outage below this margin is an energy-
/// deficient system, not a meaningful screening scenario.
pub const GEN_OUTAGE_CAPACITY_MARGIN: f64 = 1.1;

/// One scenario: per-bus load multipliers plus optional branch/generator
/// outages.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used as the derived case's name).
    pub name: String,
    /// Per-bus multiplier applied to both `pd` and `qd`; length must equal
    /// the base case's bus count.
    pub bus_load_scale: Vec<f64>,
    /// Indices (into the base case's branch list) of branches taken out of
    /// service: empty for no outage, one entry for N−1, two for N−2.
    pub branch_outages: Vec<usize>,
    /// Index (into the base case's generator list) of a unit taken out of
    /// service, if any.
    pub gen_outage: Option<usize>,
}

impl Scenario {
    /// A scenario scaling every bus load by the same factor.
    pub fn uniform(name: impl Into<String>, nbus: usize, factor: f64) -> Scenario {
        Scenario {
            name: name.into(),
            bus_load_scale: vec![factor; nbus],
            branch_outages: Vec::new(),
            gen_outage: None,
        }
    }

    /// A nominal-load scenario with branch `l` out of service.
    pub fn branch_outage(name: impl Into<String>, nbus: usize, l: usize) -> Scenario {
        Scenario {
            name: name.into(),
            bus_load_scale: vec![1.0; nbus],
            branch_outages: vec![l],
            gen_outage: None,
        }
    }

    /// A nominal-load N−2 scenario with branches `a` and `b` out of service.
    pub fn branch_pair_outage(
        name: impl Into<String>,
        nbus: usize,
        a: usize,
        b: usize,
    ) -> Scenario {
        Scenario {
            name: name.into(),
            bus_load_scale: vec![1.0; nbus],
            branch_outages: vec![a, b],
            gen_outage: None,
        }
    }

    /// A nominal-load scenario with generator `g` out of service.
    pub fn generator_outage(name: impl Into<String>, nbus: usize, g: usize) -> Scenario {
        Scenario {
            name: name.into(),
            bus_load_scale: vec![1.0; nbus],
            branch_outages: Vec::new(),
            gen_outage: Some(g),
        }
    }

    /// Apply the scenario to a base case, producing a derived case with
    /// identical dimensions and topology.
    pub fn apply(&self, base: &Case) -> Case {
        assert_eq!(
            self.bus_load_scale.len(),
            base.buses.len(),
            "scenario '{}' has {} bus multipliers for a {}-bus case",
            self.name,
            self.bus_load_scale.len(),
            base.buses.len()
        );
        let mut case = base.clone();
        case.name = self.name.clone();
        for (bus, &f) in case.buses.iter_mut().zip(&self.bus_load_scale) {
            bus.pd *= f;
            bus.qd *= f;
        }
        for &l in &self.branch_outages {
            assert!(
                l < case.branches.len(),
                "scenario '{}' outages branch {} of {}",
                self.name,
                l,
                case.branches.len()
            );
            let br = &mut case.branches[l];
            br.r = 0.0;
            br.x = OUTAGE_REACTANCE;
            br.b = 0.0;
            br.rate_a = 0.0; // unlimited: the open line must never bind
            br.tap = 0.0;
            br.shift = 0.0;
        }
        if let Some(g) = self.gen_outage {
            assert!(
                g < case.generators.len(),
                "scenario '{}' outages generator {} of {}",
                self.name,
                g,
                case.generators.len()
            );
            // Keep the record (and with it the variable layout) in place;
            // collapsing the bounds to zero pins the unit's dispatch at 0.
            let gen = &mut case.generators[g];
            gen.pg = 0.0;
            gen.qg = 0.0;
            gen.pmin = 0.0;
            gen.pmax = 0.0;
            gen.qmin = 0.0;
            gen.qmax = 0.0;
        }
        case
    }
}

/// A base case plus the scenarios derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSet {
    /// The base case every scenario perturbs.
    pub base: Case,
    /// The scenarios, in solve order.
    pub scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// `k` scenarios ramping the uniform load multiplier linearly from `lo`
    /// to `hi` (inclusive); `k = 1` uses `lo`.
    pub fn load_ramp(base: Case, k: usize, lo: f64, hi: f64) -> ScenarioSet {
        assert!(k > 0, "need at least one scenario");
        let nbus = base.buses.len();
        let scenarios = (0..k)
            .map(|i| {
                let t = if k == 1 {
                    0.0
                } else {
                    i as f64 / (k - 1) as f64
                };
                let f = lo + t * (hi - lo);
                Scenario::uniform(format!("{}_ramp{:.4}", base.name, f), nbus, f)
            })
            .collect();
        ScenarioSet { base, scenarios }
    }

    /// `k` scenarios with independent per-bus load multipliers drawn
    /// uniformly from `[1 − sigma, 1 + sigma]`. Deterministic in `seed`.
    pub fn perturbed_loads(base: Case, k: usize, sigma: f64, seed: u64) -> ScenarioSet {
        assert!(k > 0, "need at least one scenario");
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        let nbus = base.buses.len();
        let mut rng = SmallRng::seed_from_u64(seed);
        let scenarios = (0..k)
            .map(|i| Scenario {
                name: format!("{}_perturbed{}", base.name, i),
                bus_load_scale: (0..nbus)
                    .map(|_| 1.0 + rng.gen_range(-sigma..sigma))
                    .collect(),
                branch_outages: Vec::new(),
                gen_outage: None,
            })
            .collect();
        ScenarioSet { base, scenarios }
    }

    /// Up to `k` single-branch-outage (N−1) scenarios at nominal load,
    /// spread evenly over the eligible branches (see
    /// [`eligible_branch_outages`]); the set may hold fewer than `k`
    /// scenarios (empty if the topology is a tree).
    pub fn branch_outages(base: Case, k: usize) -> ScenarioSet {
        assert!(k > 0, "need at least one scenario");
        let nbus = base.buses.len();
        let scenarios = spread(&eligible_branch_outages(&base), k)
            .into_iter()
            .map(|l| Scenario::branch_outage(format!("{}_outage{}", base.name, l), nbus, l))
            .collect();
        ScenarioSet { base, scenarios }
    }

    /// Up to `k` branch-pair-outage (N−2) scenarios at nominal load, spread
    /// evenly over the eligible pairs (see [`eligible_branch_pairs`]); the
    /// set may hold fewer than `k` scenarios.
    pub fn branch_pair_outages(base: Case, k: usize) -> ScenarioSet {
        assert!(k > 0, "need at least one scenario");
        let nbus = base.buses.len();
        let scenarios = spread(&eligible_branch_pairs(&base), k)
            .into_iter()
            .map(|(a, b)| {
                Scenario::branch_pair_outage(format!("{}_outage{}x{}", base.name, a, b), nbus, a, b)
            })
            .collect();
        ScenarioSet { base, scenarios }
    }

    /// Up to `k` single-generator-outage scenarios at nominal load, spread
    /// evenly over the eligible units (see [`eligible_generator_outages`]);
    /// the set may hold fewer than `k` scenarios.
    pub fn generator_outages(base: Case, k: usize) -> ScenarioSet {
        assert!(k > 0, "need at least one scenario");
        let nbus = base.buses.len();
        let scenarios = spread(&eligible_generator_outages(&base), k)
            .into_iter()
            .map(|g| Scenario::generator_outage(format!("{}_genout{}", base.name, g), nbus, g))
            .collect();
        ScenarioSet { base, scenarios }
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the set holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Append another set's scenarios (same base case expected; the bases
    /// are not checked beyond the bus count asserted at `apply` time).
    pub fn extend(&mut self, other: ScenarioSet) {
        self.scenarios.extend(other.scenarios);
    }

    /// The derived cases, in scenario order.
    pub fn cases(&self) -> Vec<Case> {
        self.scenarios.iter().map(|s| s.apply(&self.base)).collect()
    }

    /// Compile every derived case into a [`Network`].
    pub fn networks(&self) -> Result<Vec<Network>, GridError> {
        self.cases().iter().map(|c| c.compile()).collect()
    }
}

/// Evenly-spread selection of up to `k` items from `eligible`, in eligible
/// order — the deterministic subsampling rule shared by the outage
/// constructors.
fn spread<T: Copy>(eligible: &[T], k: usize) -> Vec<T> {
    let k = k.min(eligible.len());
    (0..k).map(|i| eligible[i * eligible.len() / k]).collect()
}

/// Branch indices whose single outage keeps the network connected: every
/// non-bridge branch, in index order. Outaging a bridge islands part of the
/// system (typically a generator or load pocket), which is not a meaningful
/// N−1 screen.
pub fn eligible_branch_outages(case: &Case) -> Vec<usize> {
    let bridge = bridges(case);
    (0..case.branches.len()).filter(|&l| !bridge[l]).collect()
}

/// Branch pairs `(a, b)` with `a < b` whose joint outage keeps the network
/// connected, in lexicographic order. Both branches must individually be
/// non-bridges (otherwise the single outage already islands), and the pair
/// is connectivity-checked on the graph minus both edges — two non-bridges
/// can still island jointly (e.g. the two parallel paths of a ring).
pub fn eligible_branch_pairs(case: &Case) -> Vec<(usize, usize)> {
    let bridge = bridges(case);
    let singles: Vec<usize> = (0..case.branches.len()).filter(|&l| !bridge[l]).collect();
    let mut pairs = Vec::new();
    for (i, &a) in singles.iter().enumerate() {
        for &b in &singles[i + 1..] {
            if connected_without(case, &[a, b]) {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// Generator indices whose outage leaves enough capacity to serve the load:
/// in-service units whose removal keeps
/// `Σ pmax ≥ `[`GEN_OUTAGE_CAPACITY_MARGIN`]` × Σ pd` over the remaining
/// in-service units, in index order. A unit that is the only in-service
/// generator is never eligible.
pub fn eligible_generator_outages(case: &Case) -> Vec<usize> {
    let total_load: f64 = case.buses.iter().map(|b| b.pd.max(0.0)).sum();
    let in_service: Vec<usize> = (0..case.generators.len())
        .filter(|&g| case.generators[g].status)
        .collect();
    let total_pmax: f64 = in_service.iter().map(|&g| case.generators[g].pmax).sum();
    in_service
        .iter()
        .copied()
        .filter(|&g| {
            in_service.len() > 1
                && total_pmax - case.generators[g].pmax >= GEN_OUTAGE_CAPACITY_MARGIN * total_load
        })
        .collect()
}

/// True when the case's topology stays connected after removing the
/// branches in `skip` (union-find over the remaining in-service branches).
fn connected_without(case: &Case, skip: &[usize]) -> bool {
    let n = case.buses.len();
    let idx: std::collections::HashMap<usize, usize> = case
        .buses
        .iter()
        .enumerate()
        .map(|(i, b)| (b.id, i))
        .collect();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    let mut components = n;
    for (l, br) in case.branches.iter().enumerate() {
        if skip.contains(&l) || !br.status {
            continue;
        }
        let a = find(&mut parent, idx[&br.from]);
        let b = find(&mut parent, idx[&br.to]);
        if a != b {
            parent[a] = b;
            components -= 1;
        }
    }
    components == 1
}

/// Per-branch bridge flags of a case's topology, via an iterative low-link
/// DFS over the multigraph. Parallel circuits between the same bus pair are
/// never bridges (the DFS skips only the exact edge it entered through).
fn bridges(case: &Case) -> Vec<bool> {
    let n = case.buses.len();
    let idx: std::collections::HashMap<usize, usize> = case
        .buses
        .iter()
        .enumerate()
        .map(|(i, b)| (b.id, i))
        .collect();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (l, br) in case.branches.iter().enumerate() {
        let a = idx[&br.from];
        let b = idx[&br.to];
        adj[a].push((b, l));
        adj[b].push((a, l));
    }
    let mut tin = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut is_bridge = vec![false; case.branches.len()];
    let mut timer = 0usize;
    for root in 0..n {
        if tin[root] != usize::MAX {
            continue;
        }
        tin[root] = timer;
        low[root] = timer;
        timer += 1;
        // Frames of (node, edge entered through, next adjacency index).
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        while let Some(frame) = stack.last_mut() {
            let (v, entry_edge) = (frame.0, frame.1);
            if frame.2 < adj[v].len() {
                let (to, e) = adj[v][frame.2];
                frame.2 += 1;
                if e == entry_edge {
                    continue;
                }
                if tin[to] == usize::MAX {
                    tin[to] = timer;
                    low[to] = timer;
                    timer += 1;
                    stack.push((to, e, 0));
                } else {
                    low[v] = low[v].min(tin[to]);
                }
            } else {
                stack.pop();
                if let Some(parent) = stack.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[v]);
                    if low[v] > tin[p] {
                        is_bridge[entry_edge] = true;
                    }
                }
            }
        }
    }
    is_bridge
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    #[test]
    fn load_ramp_spans_the_requested_range() {
        let set = ScenarioSet::load_ramp(cases::case9(), 5, 0.9, 1.1);
        assert_eq!(set.len(), 5);
        assert_eq!(set.scenarios[0].bus_load_scale[0], 0.9);
        assert_eq!(set.scenarios[4].bus_load_scale[0], 1.1);
        assert!((set.scenarios[2].bus_load_scale[0] - 1.0).abs() < 1e-12);
        // Uniform within a scenario.
        for s in &set.scenarios {
            assert!(s.bus_load_scale.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn scenarios_preserve_dimensions_and_topology() {
        let base = cases::case14();
        let mut set = ScenarioSet::perturbed_loads(base.clone(), 3, 0.05, 42);
        set.extend(ScenarioSet::branch_outages(base.clone(), 3));
        set.extend(ScenarioSet::branch_pair_outages(base.clone(), 3));
        set.extend(ScenarioSet::generator_outages(base.clone(), 2));
        let base_net = base.compile().unwrap();
        for net in set.networks().unwrap() {
            assert_eq!(net.nbus, base_net.nbus);
            assert_eq!(net.ngen, base_net.ngen);
            assert_eq!(net.nbranch, base_net.nbranch);
            assert_eq!(net.br_from, base_net.br_from);
            assert_eq!(net.br_to, base_net.br_to);
        }
    }

    #[test]
    fn perturbed_loads_are_deterministic_in_seed() {
        let a = ScenarioSet::perturbed_loads(cases::case9(), 4, 0.03, 7);
        let b = ScenarioSet::perturbed_loads(cases::case9(), 4, 0.03, 7);
        assert_eq!(a, b);
        let c = ScenarioSet::perturbed_loads(cases::case9(), 4, 0.03, 8);
        assert_ne!(a, c);
        for s in &a.scenarios {
            for &f in &s.bus_load_scale {
                assert!((0.97..=1.03).contains(&f));
            }
        }
    }

    #[test]
    fn outage_opens_the_branch_electrically() {
        let base = cases::case9();
        let set = ScenarioSet::branch_outages(base.clone(), 9);
        // case9 has 9 branches; the three generator leads are bridges and
        // are skipped, leaving the six ring branches.
        assert_eq!(set.len(), 6);
        let case = set.scenarios[0].apply(&base);
        let l = set.scenarios[0].branch_outages[0];
        let y = case.branches[l].admittance();
        assert!(y.gii.abs() < 1e-6 && y.bii.abs() < 1e-6);
        assert!(y.gij.abs() < 1e-6 && y.bij.abs() < 1e-6);
        // Loads untouched, other branches untouched.
        assert_eq!(case.buses[0].pd, base.buses[0].pd);
        assert_eq!(case.branches[l + 1], base.branches[l + 1]);
    }

    #[test]
    fn outages_never_select_bridges() {
        let base = cases::case9();
        let bridge = bridges(&base);
        // Every generator lead (the only branch at its generator bus) is a
        // bridge; ring branches are not.
        assert_eq!(bridge.iter().filter(|&&b| b).count(), 3);
        for s in &ScenarioSet::branch_outages(base, 9).scenarios {
            assert!(!bridge[s.branch_outages[0]]);
        }
    }

    #[test]
    fn branch_pairs_keep_the_network_connected() {
        let base = cases::case9();
        // The six ring branches: removing any two of them splits the ring,
        // EXCEPT there is no such exception on a single cycle — every pair
        // of ring-edge removals islands it, so no pair is eligible.
        assert!(eligible_branch_pairs(&base).is_empty());
        // case14 is meshed: eligible pairs exist and all stay connected.
        let meshed = cases::case14();
        let pairs = eligible_branch_pairs(&meshed);
        assert!(!pairs.is_empty(), "case14 should admit N−2 pairs");
        for &(a, b) in &pairs {
            assert!(a < b);
            assert!(connected_without(&meshed, &[a, b]), "pair ({a}, {b})");
        }
        let set = ScenarioSet::branch_pair_outages(meshed.clone(), 5);
        assert!(set.len() <= 5 && !set.is_empty());
        // The pair outage opens both branches electrically.
        let case = set.scenarios[0].apply(&meshed);
        for &l in &set.scenarios[0].branch_outages {
            assert_eq!(case.branches[l].x, OUTAGE_REACTANCE);
        }
    }

    #[test]
    fn generator_outages_keep_capacity_margin() {
        let base = cases::case9();
        let eligible = eligible_generator_outages(&base);
        // case9: three units of 250/300/270 MW against 315 MW of load —
        // losing any one unit leaves ≥ 520 MW, all three are eligible.
        assert_eq!(eligible, vec![0, 1, 2]);
        let total_load: f64 = base.buses.iter().map(|b| b.pd.max(0.0)).sum();
        for &g in &eligible {
            let remaining: f64 = base
                .generators
                .iter()
                .enumerate()
                .filter(|&(i, gen)| i != g && gen.status)
                .map(|(_, gen)| gen.pmax)
                .sum();
            assert!(remaining >= GEN_OUTAGE_CAPACITY_MARGIN * total_load);
        }
        // The outage zeroes the unit's bounds without dropping the record.
        let set = ScenarioSet::generator_outages(base.clone(), 3);
        assert_eq!(set.len(), 3);
        let case = set.scenarios[1].apply(&base);
        assert_eq!(case.generators.len(), base.generators.len());
        let g = set.scenarios[1].gen_outage.unwrap();
        assert_eq!(case.generators[g].pmax, 0.0);
        assert_eq!(case.generators[g].qmin, 0.0);
        assert!(case.generators[g].status, "record stays in service");
    }

    #[test]
    fn single_generator_case_yields_no_outage_scenarios() {
        // two_bus has one generator: taking it out is never eligible.
        let set = ScenarioSet::generator_outages(cases::two_bus(), 5);
        assert!(set.is_empty());
    }

    #[test]
    fn tree_topology_yields_no_outage_scenarios() {
        // two_bus is a single line (a bridge): no eligible N−1 scenarios.
        let set = ScenarioSet::branch_outages(cases::two_bus(), 10);
        assert!(set.is_empty());
        assert!(ScenarioSet::branch_pair_outages(cases::two_bus(), 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "bus multipliers")]
    fn wrong_multiplier_length_panics() {
        let s = Scenario::uniform("bad", 3, 1.0);
        let _ = s.apply(&cases::case9());
    }
}
