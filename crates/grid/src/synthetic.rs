//! Deterministic synthetic grid generation.
//!
//! The paper evaluates on MATPOWER cases (pegase 1354/2869/9241/13659 and
//! ACTIVSg 25k/70k) that are not redistributable here. This module generates
//! cases with the *exact* component counts of Table I and realistic parameter
//! distributions, so the decomposition sizes, batch sizes, and scaling
//! behaviour of the experiments match the paper. Real MATPOWER files can be
//! substituted through [`crate::matpower::parse_case`] whenever available.
//!
//! Topology model: a randomized preferential-attachment spanning tree (which
//! produces the hub-dominated degree distribution typical of transmission
//! grids) plus locality-biased extra branches until the target branch count is
//! reached. Loads, generation capacity and cost curves are drawn from ranges
//! consistent with the pegase/ACTIVSg cases and scaled so that total capacity
//! exceeds total load by a configurable reserve margin.

use crate::branch::Branch;
use crate::bus::{Bus, BusType};
use crate::generator::{GenCost, Generator};
use crate::network::Case;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification for a synthetic case.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Case name.
    pub name: String,
    /// Number of buses.
    pub nbus: usize,
    /// Number of generators.
    pub ngen: usize,
    /// Number of branches. Must be at least `nbus - 1`.
    pub nbranch: usize,
    /// RNG seed: identical specs always produce identical cases.
    pub seed: u64,
    /// Fraction of buses carrying load.
    pub load_fraction: f64,
    /// Ratio of total generation capacity to total load.
    pub reserve_margin: f64,
    /// Average real load per load bus (MW).
    pub avg_load_mw: f64,
    /// Fraction of branches whose thermal rating is sized close to the
    /// expected loading (these may become binding constraints).
    pub tight_rating_fraction: f64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            name: "synthetic".into(),
            nbus: 100,
            ngen: 20,
            nbranch: 150,
            seed: 0,
            load_fraction: 0.7,
            reserve_margin: 1.6,
            avg_load_mw: 60.0,
            tight_rating_fraction: 0.05,
        }
    }
}

/// The six evaluation cases of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableICase {
    /// 1354-bus pegase-like case.
    Pegase1354,
    /// 2869-bus pegase-like case.
    Pegase2869,
    /// 9241-bus pegase-like case.
    Pegase9241,
    /// 13659-bus pegase-like case.
    Pegase13659,
    /// ACTIVSg 25k-like case.
    Activsg25k,
    /// ACTIVSg 70k-like case.
    Activsg70k,
}

impl TableICase {
    /// All six cases in the order of Table I.
    pub fn all() -> [TableICase; 6] {
        [
            TableICase::Pegase1354,
            TableICase::Pegase2869,
            TableICase::Pegase9241,
            TableICase::Pegase13659,
            TableICase::Activsg25k,
            TableICase::Activsg70k,
        ]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            TableICase::Pegase1354 => "1354pegase",
            TableICase::Pegase2869 => "2869pegase",
            TableICase::Pegase9241 => "9241pegase",
            TableICase::Pegase13659 => "13659pegase",
            TableICase::Activsg25k => "ACTIVSg25k",
            TableICase::Activsg70k => "ACTIVSg70k",
        }
    }

    /// Component counts `(generators, branches, buses)` from Table I.
    pub fn dimensions(&self) -> (usize, usize, usize) {
        match self {
            TableICase::Pegase1354 => (260, 1991, 1354),
            TableICase::Pegase2869 => (510, 4582, 2869),
            TableICase::Pegase9241 => (1445, 16049, 9241),
            TableICase::Pegase13659 => (4092, 20467, 13659),
            TableICase::Activsg25k => (4834, 32230, 25000),
            TableICase::Activsg70k => (10390, 88207, 70000),
        }
    }

    /// ADMM penalty parameters `(rho_pq, rho_va)` from Table I.
    pub fn penalties(&self) -> (f64, f64) {
        match self {
            TableICase::Pegase1354 => (1e1, 1e3),
            TableICase::Pegase2869 => (1e1, 1e3),
            TableICase::Pegase9241 => (5e1, 5e3),
            TableICase::Pegase13659 => (5e1, 5e3),
            TableICase::Activsg25k => (3e3, 3e4),
            TableICase::Activsg70k => (3e4, 3e5),
        }
    }

    /// A [`SyntheticSpec`] replicating this case's dimensions.
    pub fn spec(&self) -> SyntheticSpec {
        let (ngen, nbranch, nbus) = self.dimensions();
        SyntheticSpec {
            name: self.name().to_string(),
            nbus,
            ngen,
            nbranch,
            seed: 0x5eed ^ nbus as u64,
            ..Default::default()
        }
    }

    /// Generate the synthetic stand-in case.
    pub fn generate(&self) -> Case {
        self.spec().generate()
    }

    /// A proportionally scaled-down version with roughly `nbus` buses,
    /// preserving the generator/branch-to-bus ratios. Used by the default
    /// (laptop-scale) experiment harness.
    pub fn scaled(&self, nbus: usize) -> Case {
        let (g, l, b) = self.dimensions();
        let f = nbus as f64 / b as f64;
        let nbus = nbus.max(10);
        let ngen = ((g as f64 * f).round() as usize).max(3);
        let nbranch = ((l as f64 * f).round() as usize).max(nbus + nbus / 5);
        SyntheticSpec {
            name: format!("{}_scaled{}", self.name(), nbus),
            nbus,
            ngen,
            nbranch,
            seed: 0x5eed ^ nbus as u64,
            ..Default::default()
        }
        .generate()
    }
}

impl SyntheticSpec {
    /// Generate the case. Deterministic in the spec (including the seed).
    pub fn generate(&self) -> Case {
        assert!(self.nbus >= 2, "need at least two buses");
        assert!(self.ngen >= 1, "need at least one generator");
        assert!(
            self.nbranch >= self.nbus - 1,
            "need at least nbus-1 branches for connectivity"
        );
        assert!(
            self.ngen <= self.nbus,
            "at most one generator bus per bus is placed first"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // --- loads ---
        let mut buses = Vec::with_capacity(self.nbus);
        let mut total_load = 0.0;
        for i in 0..self.nbus {
            let id = i + 1;
            let has_load = rng.gen::<f64>() < self.load_fraction;
            let (pd, qd) = if has_load {
                // Log-uniform-ish spread of load sizes around the average.
                let scale = (rng.gen::<f64>() * 1.6 + 0.2) * self.avg_load_mw;
                let pf: f64 = rng.gen_range(0.90..0.99); // power factor
                let qd = scale * (1.0 / (pf * pf) - 1.0).sqrt();
                (scale, qd)
            } else {
                (0.0, 0.0)
            };
            total_load += pd;
            buses.push(Bus {
                id,
                bus_type: BusType::Pq,
                pd,
                qd,
                gs: 0.0,
                bs: 0.0,
                area: 1,
                vm: 1.0,
                va: 0.0,
                base_kv: 345.0,
                zone: 1,
                vmax: 1.1,
                vmin: 0.9,
            });
        }
        if total_load <= 0.0 {
            buses[0].pd = self.avg_load_mw;
            buses[0].qd = 0.3 * self.avg_load_mw;
            total_load = self.avg_load_mw;
        }

        // --- generators ---
        // Pick generator buses spread over the index range (which is also the
        // locality coordinate for the topology), then size capacities so the
        // total meets the reserve margin.
        let mut gen_buses: Vec<usize> = Vec::with_capacity(self.ngen);
        let stride = self.nbus as f64 / self.ngen as f64;
        for g in 0..self.ngen {
            let base = (g as f64 * stride) as usize;
            let jitter = rng.gen_range(0..stride.max(1.0) as usize + 1);
            gen_buses.push(((base + jitter) % self.nbus) + 1);
        }
        let target_capacity = total_load * self.reserve_margin;
        let mut raw_caps: Vec<f64> = (0..self.ngen).map(|_| rng.gen_range(0.3..1.7)).collect();
        let raw_sum: f64 = raw_caps.iter().sum();
        for c in &mut raw_caps {
            *c *= target_capacity / raw_sum;
        }
        let mut generators = Vec::with_capacity(self.ngen);
        for (g, &b) in gen_buses.iter().enumerate() {
            let pmax = raw_caps[g].max(5.0);
            let pmin = 0.0;
            let qlim = 0.75 * pmax;
            let c2 = rng.gen_range(0.005..0.08);
            let c1 = rng.gen_range(5.0..40.0);
            generators.push(Generator {
                bus: b,
                pg: 0.5 * pmax,
                qg: 0.0,
                qmax: qlim,
                qmin: -qlim,
                vg: 1.0,
                mbase: 100.0,
                status: true,
                pmax,
                pmin,
                cost: GenCost { c2, c1, c0: 0.0 },
            });
            buses[b - 1].bus_type = BusType::Pv;
        }
        buses[gen_buses[0] - 1].bus_type = BusType::Ref;

        // --- topology ---
        // Spanning tree with preferential attachment over a locality window,
        // then extra branches with locality bias. Typical flow on a branch is
        // total_load / nbranch on average; ratings are sized from that.
        let mut branches = Vec::with_capacity(self.nbranch);
        let mut degree = vec![0usize; self.nbus];
        let mut edge_set = std::collections::HashSet::new();
        for i in 1..self.nbus {
            // Connect bus i+1 to an earlier bus within a locality window,
            // preferring high-degree buses (hubs).
            let window = 40.min(i);
            let mut best = i - 1;
            let mut best_score = -1.0f64;
            for _ in 0..4 {
                let cand = i - 1 - rng.gen_range(0..window);
                let score = (degree[cand] as f64 + 1.0) * rng.gen::<f64>();
                if score > best_score {
                    best_score = score;
                    best = cand;
                }
            }
            edge_set.insert((best.min(i), best.max(i)));
            degree[best] += 1;
            degree[i] += 1;
            branches.push(self.random_branch(&mut rng, best + 1, i + 1, total_load, true));
        }
        let mut attempts = 0usize;
        while branches.len() < self.nbranch && attempts < 50 * self.nbranch {
            attempts += 1;
            let a = rng.gen_range(0..self.nbus);
            // Locality bias: most extra circuits connect nearby buses.
            let span = if rng.gen::<f64>() < 0.85 {
                rng.gen_range(1..=30.min(self.nbus - 1))
            } else {
                rng.gen_range(1..self.nbus)
            };
            let b = (a + span) % self.nbus;
            let key = (a.min(b), a.max(b));
            if a == b || edge_set.contains(&key) {
                continue;
            }
            edge_set.insert(key);
            degree[a] += 1;
            degree[b] += 1;
            branches.push(self.random_branch(&mut rng, a + 1, b + 1, total_load, false));
        }
        // If the locality sampler could not place enough unique edges (tiny
        // dense cases), add parallel circuits which MATPOWER permits.
        while branches.len() < self.nbranch {
            let a = rng.gen_range(0..self.nbus);
            let b = (a + 1 + rng.gen_range(0..self.nbus - 1)) % self.nbus;
            if a == b {
                continue;
            }
            branches.push(self.random_branch(&mut rng, a + 1, b + 1, total_load, false));
        }

        Case {
            name: self.name.clone(),
            base_mva: 100.0,
            buses,
            generators,
            branches,
        }
    }

    fn random_branch(
        &self,
        rng: &mut SmallRng,
        from: usize,
        to: usize,
        total_load: f64,
        is_tree: bool,
    ) -> Branch {
        // Expected loading if flow spread uniformly; most ratings are generous
        // multiples of it, a few are tight. Spanning-tree branches never get
        // tight ratings: a tree edge can be a bridge whose flow is forced by
        // the downstream load, so a rating near the *average* flow would make
        // the case structurally infeasible rather than merely binding.
        let expected = (total_load / self.nbranch as f64).max(10.0);
        let rate = if !is_tree && rng.gen::<f64>() < self.tight_rating_fraction {
            expected * rng.gen_range(1.5..3.0)
        } else {
            expected * rng.gen_range(6.0..20.0)
        };
        let rate = rate.max(20.0);
        // Per-unit impedance scales inversely with thermal capacity (a line
        // built to carry more power is electrically stiffer), so the voltage
        // drop at rated flow stays bounded regardless of loading.
        let x = rng.gen_range(2.0..5.0) / rate;
        let r = x * rng.gen_range(0.08..0.35);
        let b = rng.gen_range(0.0..0.06);
        Branch::line(from, to, r, x, b, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_case_has_requested_dimensions() {
        let spec = SyntheticSpec {
            nbus: 120,
            ngen: 25,
            nbranch: 190,
            seed: 7,
            ..Default::default()
        };
        let case = spec.generate();
        assert_eq!(case.buses.len(), 120);
        assert_eq!(case.generators.len(), 25);
        assert_eq!(case.branches.len(), 190);
    }

    #[test]
    fn generated_case_compiles_and_is_connected() {
        let case = SyntheticSpec {
            nbus: 200,
            ngen: 40,
            nbranch: 320,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let net = case.compile().expect("synthetic case must be connected");
        assert_eq!(net.nbus, 200);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = SyntheticSpec {
            nbus: 60,
            ngen: 10,
            nbranch: 90,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seed_different_case() {
        let a = SyntheticSpec {
            seed: 1,
            ..Default::default()
        }
        .generate();
        let b = SyntheticSpec {
            seed: 2,
            ..Default::default()
        }
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn capacity_respects_reserve_margin() {
        let spec = SyntheticSpec {
            nbus: 150,
            ngen: 30,
            nbranch: 230,
            seed: 11,
            reserve_margin: 1.8,
            ..Default::default()
        };
        let case = spec.generate();
        let ratio = case.total_capacity_mw() / case.total_load_mw();
        assert!(ratio > 1.5, "reserve ratio {ratio}");
    }

    #[test]
    fn table1_dimensions_match_paper() {
        assert_eq!(TableICase::Pegase1354.dimensions(), (260, 1991, 1354));
        assert_eq!(TableICase::Activsg70k.dimensions(), (10390, 88207, 70000));
        assert_eq!(TableICase::Pegase9241.penalties(), (5e1, 5e3));
        assert_eq!(TableICase::Activsg70k.penalties(), (3e4, 3e5));
    }

    #[test]
    fn table1_small_case_generates_and_compiles() {
        let case = TableICase::Pegase1354.generate();
        assert_eq!(case.buses.len(), 1354);
        assert_eq!(case.generators.len(), 260);
        assert_eq!(case.branches.len(), 1991);
        assert!(case.compile().is_ok());
    }

    #[test]
    fn scaled_case_preserves_ratios_roughly() {
        let case = TableICase::Activsg25k.scaled(500);
        assert_eq!(case.buses.len(), 500);
        // branch/bus ratio of ACTIVSg25k is ~1.29
        let ratio = case.branches.len() as f64 / case.buses.len() as f64;
        assert!(ratio > 1.1 && ratio < 1.6, "ratio {ratio}");
        assert!(case.compile().is_ok());
    }

    #[test]
    fn all_table1_names_unique() {
        let names: std::collections::HashSet<_> =
            TableICase::all().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
