//! Spec-driven contingency expansion: thousand-scenario N−k sweeps.
//!
//! A [`ContingencySpec`] is a compact template — a load-level grid, a count
//! of seeded per-bus perturbation draws, and per-family outage caps — that
//! [expands](ContingencySpec::expand) into a [`ScenarioSet`] holding the
//! full cross product
//!
//! ```text
//! load levels × (uniform + perturbation draws) × (base + outage columns)
//! ```
//!
//! so a handful of spec fields yields thousands of scenarios. Expansion is
//! deterministic (same spec + base case → the same set, independent of the
//! machine) and injective in the scenario names: every scenario is named
//! `{base}_l{level}_p{draw}_{tag}` with tags `base`, `br{l}`, `br{a}x{b}`,
//! `gen{g}`, so names double as stable identifiers in manifests and stores.
//!
//! The outage columns reuse the eligibility screens of [`crate::scenario`]
//! (bridge skip for N−1, connectivity check for N−2 pairs, capacity margin
//! for generator outages), so every expanded scenario stays connected and
//! feasible by construction.

use crate::network::Case;
use crate::scenario::{Scenario, ScenarioSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Odd 64-bit mixing constants decorrelating the per-(level, draw) RNG
/// streams (splitmix64 / Weyl-sequence increments).
const LEVEL_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;
const DRAW_STRIDE: u64 = 0xD1B5_4A32_D192_ED03;

/// Template for an N−k contingency sweep; see the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencySpec {
    /// Uniform load multipliers forming the level grid; each must be
    /// positive and finite, and levels must be pairwise distinct.
    pub load_levels: Vec<f64>,
    /// Number of seeded per-bus perturbation draws layered on each level
    /// (0 = uniform levels only).
    pub perturbations: usize,
    /// Half-width of the per-bus multiplier noise, in `[0, 1)`; must be
    /// positive when `perturbations > 0`.
    pub sigma: f64,
    /// Seed for the perturbation draws.
    pub seed: u64,
    /// Include the no-outage column at every (level, draw) point.
    pub include_base: bool,
    /// Cap on single-branch (N−1) outage columns; the expansion uses
    /// `min(cap, eligible)` branches, spread evenly over the eligible list.
    pub n1_branches: usize,
    /// Cap on branch-pair (N−2) outage columns.
    pub n2_pairs: usize,
    /// Cap on single-generator outage columns.
    pub gen_outages: usize,
}

impl ContingencySpec {
    /// A spec with `levels` uniform load levels spanning `[lo, hi]`, no
    /// perturbations, the base column, and no outages — the smallest
    /// useful starting point for the builder methods.
    pub fn load_grid(levels: usize, lo: f64, hi: f64) -> ContingencySpec {
        assert!(levels > 0, "need at least one load level");
        let load_levels = (0..levels)
            .map(|i| {
                let t = if levels == 1 {
                    0.0
                } else {
                    i as f64 / (levels - 1) as f64
                };
                lo + t * (hi - lo)
            })
            .collect();
        ContingencySpec {
            load_levels,
            perturbations: 0,
            sigma: 0.0,
            seed: 0,
            include_base: true,
            n1_branches: 0,
            n2_pairs: 0,
            gen_outages: 0,
        }
    }

    /// Layer `draws` seeded per-bus perturbation draws (noise half-width
    /// `sigma`) on every load level.
    pub fn perturbed(mut self, draws: usize, sigma: f64, seed: u64) -> ContingencySpec {
        self.perturbations = draws;
        self.sigma = sigma;
        self.seed = seed;
        self
    }

    /// Set the outage-column caps (N−1 branches, N−2 pairs, generator
    /// outages).
    pub fn outages(mut self, n1: usize, n2: usize, gens: usize) -> ContingencySpec {
        self.n1_branches = n1;
        self.n2_pairs = n2;
        self.gen_outages = gens;
        self
    }

    /// Drop the no-outage column (outage scenarios only).
    pub fn without_base(mut self) -> ContingencySpec {
        self.include_base = false;
        self
    }

    /// Check the spec's invariants; expansion panics on an invalid spec,
    /// so validate first at API boundaries.
    pub fn validate(&self) -> Result<(), String> {
        if self.load_levels.is_empty() {
            return Err("spec needs at least one load level".into());
        }
        for &f in &self.load_levels {
            if !f.is_finite() || f <= 0.0 {
                return Err(format!("load level {f} is not positive and finite"));
            }
        }
        for (i, &a) in self.load_levels.iter().enumerate() {
            if self.load_levels[i + 1..].contains(&a) {
                return Err(format!("duplicate load level {a}"));
            }
        }
        if !(0.0..1.0).contains(&self.sigma) {
            return Err(format!("sigma {} outside [0, 1)", self.sigma));
        }
        if self.perturbations > 0 && self.sigma == 0.0 {
            return Err("perturbation draws need sigma > 0".into());
        }
        if !self.include_base
            && self.n1_branches == 0
            && self.n2_pairs == 0
            && self.gen_outages == 0
        {
            return Err("spec selects no scenarios: no base column and no outages".into());
        }
        Ok(())
    }

    /// The outage columns the expansion will emit for `base`, as
    /// `(tag, scenario template)` pairs at nominal load. The spec's caps
    /// are applied against the case's eligible lists with the same
    /// even-spread rule the `ScenarioSet` constructors use.
    fn columns(&self, base: &Case) -> Vec<(String, Vec<usize>, Option<usize>)> {
        let mut cols: Vec<(String, Vec<usize>, Option<usize>)> = Vec::new();
        if self.include_base {
            cols.push(("base".into(), Vec::new(), None));
        }
        if self.n1_branches > 0 {
            for s in ScenarioSet::branch_outages(base.clone(), self.n1_branches).scenarios {
                let l = s.branch_outages[0];
                cols.push((format!("br{l}"), vec![l], None));
            }
        }
        if self.n2_pairs > 0 {
            for s in ScenarioSet::branch_pair_outages(base.clone(), self.n2_pairs).scenarios {
                let (a, b) = (s.branch_outages[0], s.branch_outages[1]);
                cols.push((format!("br{a}x{b}"), vec![a, b], None));
            }
        }
        if self.gen_outages > 0 {
            for s in ScenarioSet::generator_outages(base.clone(), self.gen_outages).scenarios {
                let g = s.gen_outage.unwrap();
                cols.push((format!("gen{g}"), Vec::new(), Some(g)));
            }
        }
        cols
    }

    /// Number of scenarios [`expand`](Self::expand) will produce for
    /// `base` (levels × draws × columns, with column counts capped by the
    /// case's eligible outages).
    pub fn count(&self, base: &Case) -> usize {
        self.load_levels.len() * (1 + self.perturbations) * self.columns(base).len()
    }

    /// Expand the spec against `base` into a full [`ScenarioSet`].
    /// Deterministic in the spec (independent of machine, thread count, or
    /// call order); panics if [`validate`](Self::validate) fails.
    pub fn expand(&self, base: &Case) -> ScenarioSet {
        if let Err(e) = self.validate() {
            panic!("invalid ContingencySpec: {e}");
        }
        let nbus = base.buses.len();
        let columns = self.columns(base);
        let mut scenarios = Vec::with_capacity(self.count(base));
        for (i, &level) in self.load_levels.iter().enumerate() {
            for j in 0..=self.perturbations {
                // One multiplier vector per (level, draw), shared across
                // every outage column so columns differ only in topology.
                let scale: Vec<f64> = if j == 0 {
                    vec![level; nbus]
                } else {
                    let mut rng = SmallRng::seed_from_u64(
                        self.seed
                            .wrapping_add((i as u64).wrapping_mul(LEVEL_STRIDE))
                            .wrapping_add((j as u64).wrapping_mul(DRAW_STRIDE)),
                    );
                    (0..nbus)
                        .map(|_| level * (1.0 + rng.gen_range(-self.sigma..self.sigma)))
                        .collect()
                };
                for (tag, branch_outages, gen_outage) in &columns {
                    scenarios.push(Scenario {
                        name: format!("{}_l{}_p{}_{}", base.name, i, j, tag),
                        bus_load_scale: scale.clone(),
                        branch_outages: branch_outages.clone(),
                        gen_outage: *gen_outage,
                    });
                }
            }
        }
        ScenarioSet {
            base: base.clone(),
            scenarios,
        }
    }

    /// Human-readable manifest of what the spec expands to on `base`.
    pub fn manifest(&self, base: &Case) -> ContingencyManifest {
        let columns = self.columns(base);
        ContingencyManifest {
            levels: self.load_levels.len(),
            draws_per_level: 1 + self.perturbations,
            base_columns: columns.iter().filter(|c| c.0 == "base").count(),
            n1_columns: columns.iter().filter(|c| c.1.len() == 1).count(),
            n2_columns: columns.iter().filter(|c| c.1.len() == 2).count(),
            gen_columns: columns.iter().filter(|c| c.2.is_some()).count(),
            total: self.count(base),
            tags: columns.into_iter().map(|c| c.0).collect(),
        }
    }
}

/// Expansion summary of a [`ContingencySpec`] against one base case.
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyManifest {
    /// Number of load levels.
    pub levels: usize,
    /// Draws per level (1 uniform + perturbations).
    pub draws_per_level: usize,
    /// 1 when the no-outage column is included, else 0.
    pub base_columns: usize,
    /// Number of N−1 outage columns.
    pub n1_columns: usize,
    /// Number of N−2 pair columns.
    pub n2_columns: usize,
    /// Number of generator-outage columns.
    pub gen_columns: usize,
    /// Total scenarios in the expansion.
    pub total: usize,
    /// Column tags, in expansion order.
    pub tags: Vec<String>,
}

// Re-exported here so callers sizing a spec can reason about eligibility
// without importing the scenario module too.
pub use crate::scenario::{
    eligible_branch_outages as n1_eligible, eligible_branch_pairs as n2_eligible,
    eligible_generator_outages as gen_outage_eligible,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    fn spec() -> ContingencySpec {
        ContingencySpec::load_grid(3, 0.95, 1.05)
            .perturbed(2, 0.02, 42)
            .outages(4, 3, 2)
    }

    #[test]
    fn expansion_matches_count_and_manifest() {
        let base = cases::case14();
        let s = spec();
        let set = s.expand(&base);
        assert_eq!(set.len(), s.count(&base));
        let m = s.manifest(&base);
        assert_eq!(m.total, set.len());
        assert_eq!(m.levels, 3);
        assert_eq!(m.draws_per_level, 3);
        assert_eq!(m.base_columns, 1);
        assert_eq!(m.n1_columns, 4);
        assert_eq!(m.n2_columns, 3);
        assert_eq!(
            m.total,
            m.levels
                * m.draws_per_level
                * (m.base_columns + m.n1_columns + m.n2_columns + m.gen_columns)
        );
    }

    #[test]
    fn expansion_is_deterministic_and_injective() {
        let base = cases::case14();
        let a = spec().expand(&base);
        let b = spec().expand(&base);
        assert_eq!(a, b);
        let mut names: Vec<&str> = a.scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), a.len(), "scenario names must be unique");
    }

    #[test]
    fn draws_share_multipliers_across_columns() {
        let base = cases::case14();
        let set = spec().expand(&base);
        // All scenarios with the same _l{i}_p{j}_ prefix share one
        // multiplier vector.
        let prefix = "case14_l1_p2_";
        let group: Vec<&Scenario> = set
            .scenarios
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect();
        assert!(group.len() > 1);
        for s in &group[1..] {
            assert_eq!(s.bus_load_scale, group[0].bus_load_scale);
        }
        // And the p1/p2 draws differ from each other and from the uniform p0.
        let pick = |p: &str| {
            set.scenarios
                .iter()
                .find(|s| s.name.starts_with(p))
                .unwrap()
        };
        assert_ne!(
            pick("case14_l1_p0_").bus_load_scale,
            pick("case14_l1_p1_").bus_load_scale
        );
        assert_ne!(
            pick("case14_l1_p1_").bus_load_scale,
            pick("case14_l1_p2_").bus_load_scale
        );
    }

    #[test]
    fn all_expanded_networks_compile_and_stay_connected() {
        let base = cases::case14();
        let set = spec().expand(&base);
        let nets = set.networks().unwrap();
        assert_eq!(nets.len(), set.len());
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = spec();
        s.load_levels.clear();
        assert!(s.validate().is_err());

        let mut s = spec();
        s.load_levels = vec![1.0, 1.0];
        assert!(s.validate().is_err());

        let mut s = spec();
        s.load_levels = vec![-0.5];
        assert!(s.validate().is_err());

        let mut s = spec();
        s.sigma = 1.5;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.sigma = 0.0;
        assert!(s.validate().is_err(), "draws without noise");

        let s = ContingencySpec::load_grid(2, 0.9, 1.1).without_base();
        assert!(s.validate().is_err(), "no base and no outages");

        assert!(spec().validate().is_ok());
    }

    #[test]
    fn caps_respect_eligibility() {
        // case9's ring has 6 eligible N−1 branches and no N−2 pairs.
        let base = cases::case9();
        let s = ContingencySpec::load_grid(1, 1.0, 1.0).outages(100, 100, 100);
        let m = s.manifest(&base);
        assert_eq!(m.n1_columns, 6);
        assert_eq!(m.n2_columns, 0);
        assert_eq!(m.gen_columns, 3);
    }

    #[test]
    #[should_panic(expected = "invalid ContingencySpec")]
    fn expand_panics_on_invalid_spec() {
        let mut s = spec();
        s.sigma = -1.0;
        let _ = s.expand(&cases::case9());
    }
}
