//! Per-unit conversion helpers.
//!
//! All optimization layers work in per unit on the system MVA base; raw case
//! records keep MATPOWER's physical units (MW, MVAr, $/MWh). These helpers
//! centralize the conversions so that objective values remain in $/hr while
//! powers, admittances, and line ratings are per unit.

/// Convert a power in MW (or MVAr) to per unit on `base_mva`.
#[inline]
pub fn to_pu(power_mw: f64, base_mva: f64) -> f64 {
    power_mw / base_mva
}

/// Convert a per-unit power back to MW (or MVAr).
#[inline]
pub fn from_pu(power_pu: f64, base_mva: f64) -> f64 {
    power_pu * base_mva
}

/// Convert MATPOWER polynomial cost coefficients (on MW) to coefficients on
/// per-unit power so that `c2' * p_pu^2 + c1' * p_pu + c0` equals the original
/// cost in $/hr.
#[inline]
pub fn cost_to_pu(c2: f64, c1: f64, c0: f64, base_mva: f64) -> (f64, f64, f64) {
    (c2 * base_mva * base_mva, c1 * base_mva, c0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let base = 100.0;
        let p = 163.0;
        assert!((from_pu(to_pu(p, base), base) - p).abs() < 1e-12);
    }

    #[test]
    fn cost_conversion_preserves_value() {
        let base = 100.0;
        let (c2, c1, c0) = (0.11, 5.0, 150.0);
        let p_mw = 85.0;
        let p_pu = to_pu(p_mw, base);
        let (d2, d1, d0) = cost_to_pu(c2, c1, c0, base);
        let orig = c2 * p_mw * p_mw + c1 * p_mw + c0;
        let conv = d2 * p_pu * p_pu + d1 * p_pu + d0;
        assert!((orig - conv).abs() < 1e-9);
    }

    #[test]
    fn zero_power_is_zero_pu() {
        assert_eq!(to_pu(0.0, 100.0), 0.0);
    }
}
