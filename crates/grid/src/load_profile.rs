//! Time-varying load profiles for the warm-start tracking experiment.
//!
//! The paper drives its 30-period (one minute each) tracking experiment with
//! an hourly real-time system-demand trace from ISO New England interpolated
//! to minutes; over the 30-minute horizon the load drifts by up to 5 % from
//! its starting value. That feed is not available offline, so this module
//! synthesizes an hourly demand curve with the familiar double-peak daily
//! shape, interpolates it to one-minute resolution, and extracts windows with
//! the paper's drift characteristics. Real hourly data can be supplied via
//! [`LoadProfile::from_hourly`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A per-period load multiplier sequence. Multipliers are relative to the base
/// case's nominal load (period 0 of a window is typically 1.0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Multiplier applied to every bus load in each period.
    pub multipliers: Vec<f64>,
    /// Length of one period in minutes (informational).
    pub period_minutes: f64,
}

impl LoadProfile {
    /// Build a profile directly from hourly demand samples (e.g. a real
    /// ISO-NE trace), linearly interpolated to `period_minutes` resolution and
    /// normalized so the first sample maps to 1.0.
    pub fn from_hourly(hourly_demand: &[f64], period_minutes: f64) -> Self {
        assert!(hourly_demand.len() >= 2, "need at least two hourly samples");
        assert!(period_minutes > 0.0);
        let base = hourly_demand[0];
        assert!(base > 0.0, "demand must be positive");
        let steps_per_hour = (60.0 / period_minutes).round() as usize;
        let mut multipliers = Vec::new();
        for h in 0..hourly_demand.len() - 1 {
            let a = hourly_demand[h] / base;
            let b = hourly_demand[h + 1] / base;
            for s in 0..steps_per_hour {
                let t = s as f64 / steps_per_hour as f64;
                multipliers.push(a + t * (b - a));
            }
        }
        multipliers.push(hourly_demand[hourly_demand.len() - 1] / base);
        LoadProfile {
            multipliers,
            period_minutes,
        }
    }

    /// Synthesize a 24-hour demand curve with morning/evening peaks plus small
    /// random perturbations, interpolated to one-minute periods.
    /// Deterministic in `seed`.
    pub fn synthetic_day(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut hourly = Vec::with_capacity(25);
        for h in 0..=24 {
            let t = h as f64;
            // Double-peak daily shape normalized around 1.0.
            let morning = 0.18 * (-(t - 9.0) * (t - 9.0) / 8.0).exp();
            let evening = 0.25 * (-(t - 19.0) * (t - 19.0) / 10.0).exp();
            let overnight = -0.15 * (-(t - 3.5) * (t - 3.5) / 12.0).exp();
            let noise = rng.gen_range(-0.01..0.01);
            hourly.push(1.0 + morning + evening + overnight + noise);
        }
        LoadProfile::from_hourly(&hourly, 1.0)
    }

    /// Extract a tracking window of `periods` one-minute periods starting at
    /// `start`, re-normalized so the window's first period is 1.0 (the cold
    /// start solves the nominal case). The synthetic day is constructed so a
    /// 30-period window drifts by at most ~5 %, as in the paper.
    pub fn window(&self, start: usize, periods: usize) -> LoadProfile {
        assert!(
            start + periods <= self.multipliers.len(),
            "window [{start}, {}) exceeds profile length {}",
            start + periods,
            self.multipliers.len()
        );
        let base = self.multipliers[start];
        LoadProfile {
            multipliers: self.multipliers[start..start + periods]
                .iter()
                .map(|m| m / base)
                .collect(),
            period_minutes: self.period_minutes,
        }
    }

    /// The paper's experiment window: 30 one-minute periods over which the
    /// load changes by up to 5 % from its starting value. The window is chosen
    /// on the steep morning ramp of the synthetic day and rescaled to hit the
    /// requested maximum drift exactly.
    pub fn paper_window(seed: u64, periods: usize, max_drift: f64) -> LoadProfile {
        let day = LoadProfile::synthetic_day(seed);
        // Steepest stretch of the morning ramp: around hour 7 (minute 420).
        let start = 420.min(day.multipliers.len().saturating_sub(periods + 1));
        let mut w = day.window(start, periods);
        let drift = w
            .multipliers
            .iter()
            .map(|m| (m - 1.0).abs())
            .fold(0.0f64, f64::max);
        if drift > 1e-12 {
            let scale = max_drift / drift;
            for m in &mut w.multipliers {
                *m = 1.0 + (*m - 1.0) * scale;
            }
        }
        w
    }

    /// Number of periods.
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// True when the profile has no periods.
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }

    /// Maximum absolute drift from the starting value.
    pub fn max_drift(&self) -> f64 {
        let base = self.multipliers.first().copied().unwrap_or(1.0);
        self.multipliers
            .iter()
            .map(|m| (m - base).abs())
            .fold(0.0, f64::max)
    }

    /// Largest period-to-period change (relevant for ramp-rate feasibility).
    pub fn max_step(&self) -> f64 {
        self.multipliers
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_interpolation_length() {
        let p = LoadProfile::from_hourly(&[100.0, 110.0, 105.0], 1.0);
        // Two hours of minutes plus the final sample.
        assert_eq!(p.len(), 121);
        assert!((p.multipliers[0] - 1.0).abs() < 1e-12);
        assert!((p.multipliers[60] - 1.1).abs() < 1e-12);
        assert!((p.multipliers[120] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_monotone_between_samples() {
        let p = LoadProfile::from_hourly(&[100.0, 120.0], 1.0);
        for w in p.multipliers.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn synthetic_day_is_deterministic() {
        assert_eq!(
            LoadProfile::synthetic_day(7).multipliers,
            LoadProfile::synthetic_day(7).multipliers
        );
    }

    #[test]
    fn synthetic_day_covers_24_hours_of_minutes() {
        let p = LoadProfile::synthetic_day(0);
        assert_eq!(p.len(), 24 * 60 + 1);
    }

    #[test]
    fn window_renormalizes_to_one() {
        let day = LoadProfile::synthetic_day(3);
        let w = day.window(500, 30);
        assert_eq!(w.len(), 30);
        assert!((w.multipliers[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_window_has_requested_drift() {
        let w = LoadProfile::paper_window(0, 30, 0.05);
        assert_eq!(w.len(), 30);
        assert!(
            (w.max_drift() - 0.05).abs() < 1e-9,
            "drift {}",
            w.max_drift()
        );
        // Per-minute steps stay small, consistent with interpolation of an
        // hourly signal.
        assert!(w.max_step() < 0.01, "step {}", w.max_step());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn window_out_of_range_panics() {
        let day = LoadProfile::synthetic_day(0);
        let _ = day.window(day.len(), 10);
    }
}
