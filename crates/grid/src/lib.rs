//! # gridsim-grid
//!
//! Power-grid data model substrate for the GridADMM reproduction of
//! *"Accelerated Computation and Tracking of AC Optimal Power Flow Solutions
//! Using GPUs"* (Kim & Kim, ICPP 2022).
//!
//! This crate provides everything the optimization layers need to know about
//! an electrical network:
//!
//! * raw case data in MATPOWER-style records ([`Case`], [`Bus`], [`Branch`],
//!   [`Generator`], [`GenCost`]),
//! * a MATPOWER `.m` file parser and writer ([`matpower`]),
//! * embedded reference cases for tests and examples ([`cases`]),
//! * a deterministic synthetic-grid generator able to produce cases with the
//!   exact component counts of the paper's Table I ([`synthetic`]),
//! * time-varying load profiles for the warm-start tracking experiment
//!   ([`load_profile`]),
//! * scenario-set generation (load ramps, per-bus perturbations, N−1/N−2
//!   branch and generator outages) for batched multi-scenario solves
//!   ([`scenario`]), plus spec-driven expansion into thousand-scenario
//!   contingency sweeps ([`contingency`]),
//! * scenario fingerprints (load vector + structure signature) keying the
//!   warm-start solution store ([`fingerprint`]),
//! * and a compiled, per-unit, internally-indexed [`Network`] with branch
//!   admittances and adjacency used by both the ADMM solver and the
//!   interior-point baseline.

pub mod branch;
pub mod bus;
pub mod cases;
pub mod contingency;
pub mod error;
pub mod fingerprint;
pub mod generator;
pub mod load_profile;
pub mod matpower;
pub mod network;
pub mod perunit;
pub mod scenario;
pub mod synthetic;

pub use branch::Branch;
pub use bus::{Bus, BusType};
pub use cases::{case14, case30_like, case5, case9, two_bus};
pub use contingency::{ContingencyManifest, ContingencySpec};
pub use error::GridError;
pub use fingerprint::ScenarioFingerprint;
pub use generator::{GenCost, Generator};
pub use load_profile::LoadProfile;
pub use network::{Case, Network};
pub use scenario::{Scenario, ScenarioSet};
pub use synthetic::{SyntheticSpec, TableICase};
