//! Error type shared across the grid substrate.

use std::fmt;

/// Errors raised while parsing, validating, or compiling grid data.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A MATPOWER file could not be parsed.
    Parse { line: usize, message: String },
    /// The case data is structurally invalid (dangling references, empty
    /// component sets, non-positive base MVA, ...).
    Invalid(String),
    /// A referenced bus id does not exist in the bus table.
    UnknownBus(usize),
    /// The network is not connected from the reference bus.
    Disconnected { unreachable_buses: usize },
    /// I/O failure while reading a case file.
    Io(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GridError::Invalid(msg) => write!(f, "invalid case data: {msg}"),
            GridError::UnknownBus(id) => write!(f, "reference to unknown bus id {id}"),
            GridError::Disconnected { unreachable_buses } => write!(
                f,
                "network is disconnected: {unreachable_buses} buses unreachable from the reference bus"
            ),
            GridError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<std::io::Error> for GridError {
    fn from(e: std::io::Error) -> Self {
        GridError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error_mentions_line() {
        let e = GridError::Parse {
            line: 42,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn display_invalid() {
        let e = GridError::Invalid("no buses".into());
        assert!(e.to_string().contains("no buses"));
    }

    #[test]
    fn display_unknown_bus() {
        assert!(GridError::UnknownBus(7).to_string().contains('7'));
    }

    #[test]
    fn display_disconnected() {
        let e = GridError::Disconnected {
            unreachable_buses: 3,
        };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GridError = io.into();
        assert!(matches!(e, GridError::Io(_)));
    }
}
