//! MATPOWER `.m` case file parsing and writing.
//!
//! Supports the standard `mpc.baseMVA`, `mpc.bus`, `mpc.gen`, `mpc.branch`,
//! and `mpc.gencost` matrices. Piecewise-linear cost models (MODEL = 1) are
//! converted to a quadratic least-squares fit; polynomial models (MODEL = 2)
//! of degree ≤ 2 are taken as-is and higher degrees are truncated to their
//! quadratic part. This is enough to load the pegase / ACTIVSg cases the
//! paper evaluates on when the files are available locally.

use crate::branch::Branch;
use crate::bus::{Bus, BusType};
use crate::error::GridError;
use crate::generator::{GenCost, Generator};
use crate::network::Case;
use std::path::Path;

/// Parse a MATPOWER case from a file path.
pub fn read_case(path: &Path) -> Result<Case, GridError> {
    let text = std::fs::read_to_string(path)?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "case".to_string());
    parse_case(&text, &name)
}

/// Parse a MATPOWER case from in-memory text.
pub fn parse_case(text: &str, name: &str) -> Result<Case, GridError> {
    let base_mva = parse_scalar(text, "baseMVA")?.unwrap_or(100.0);
    let bus_rows = parse_matrix(text, "bus")?
        .ok_or_else(|| GridError::Invalid("missing mpc.bus matrix".into()))?;
    let gen_rows = parse_matrix(text, "gen")?
        .ok_or_else(|| GridError::Invalid("missing mpc.gen matrix".into()))?;
    let branch_rows = parse_matrix(text, "branch")?
        .ok_or_else(|| GridError::Invalid("missing mpc.branch matrix".into()))?;
    let gencost_rows = parse_matrix(text, "gencost")?.unwrap_or_default();

    let mut buses = Vec::with_capacity(bus_rows.len());
    for (i, row) in bus_rows.iter().enumerate() {
        if row.len() < 13 {
            return Err(GridError::Parse {
                line: i + 1,
                message: format!("bus row has {} columns, expected >= 13", row.len()),
            });
        }
        buses.push(Bus {
            id: row[0] as usize,
            bus_type: BusType::from_code(row[1] as i64),
            pd: row[2],
            qd: row[3],
            gs: row[4],
            bs: row[5],
            area: row[6] as usize,
            vm: row[7],
            va: row[8],
            base_kv: row[9],
            zone: row[10] as usize,
            vmax: row[11],
            vmin: row[12],
        });
    }

    let mut generators = Vec::with_capacity(gen_rows.len());
    for (i, row) in gen_rows.iter().enumerate() {
        if row.len() < 10 {
            return Err(GridError::Parse {
                line: i + 1,
                message: format!("gen row has {} columns, expected >= 10", row.len()),
            });
        }
        let cost = gencost_rows
            .get(i)
            .map(|r| parse_gencost(r))
            .transpose()?
            .unwrap_or_default();
        generators.push(Generator {
            bus: row[0] as usize,
            pg: row[1],
            qg: row[2],
            qmax: row[3],
            qmin: row[4],
            vg: row[5],
            mbase: row[6],
            status: row[7] > 0.0,
            pmax: row[8],
            pmin: row[9],
            cost,
        });
    }

    let mut branches = Vec::with_capacity(branch_rows.len());
    for (i, row) in branch_rows.iter().enumerate() {
        if row.len() < 11 {
            return Err(GridError::Parse {
                line: i + 1,
                message: format!("branch row has {} columns, expected >= 11", row.len()),
            });
        }
        branches.push(Branch {
            from: row[0] as usize,
            to: row[1] as usize,
            r: row[2],
            x: row[3],
            b: row[4],
            rate_a: row[5],
            tap: row[8],
            shift: row[9],
            status: row[10] > 0.0,
            angmin: row.get(11).copied().unwrap_or(-360.0),
            angmax: row.get(12).copied().unwrap_or(360.0),
        });
    }

    Ok(Case {
        name: name.to_string(),
        base_mva,
        buses,
        generators,
        branches,
    })
}

/// Serialize a case back to MATPOWER `.m` format.
pub fn write_case(case: &Case) -> String {
    let mut out = String::new();
    out.push_str(&format!("function mpc = {}\n", case.name));
    out.push_str("mpc.version = '2';\n");
    out.push_str(&format!("mpc.baseMVA = {};\n\n", case.base_mva));

    out.push_str("%% bus data\nmpc.bus = [\n");
    for b in &case.buses {
        out.push_str(&format!(
            "\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{};\n",
            b.id,
            b.bus_type.to_code(),
            b.pd,
            b.qd,
            b.gs,
            b.bs,
            b.area,
            b.vm,
            b.va,
            b.base_kv,
            b.zone,
            b.vmax,
            b.vmin
        ));
    }
    out.push_str("];\n\n%% generator data\nmpc.gen = [\n");
    for g in &case.generators {
        out.push_str(&format!(
            "\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t0\t0\t0\t0\t0\t0\t0\t0\t0\t0\t0;\n",
            g.bus,
            g.pg,
            g.qg,
            g.qmax,
            g.qmin,
            g.vg,
            g.mbase,
            if g.status { 1 } else { 0 },
            g.pmax,
            g.pmin
        ));
    }
    out.push_str("];\n\n%% branch data\nmpc.branch = [\n");
    for br in &case.branches {
        out.push_str(&format!(
            "\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{};\n",
            br.from,
            br.to,
            br.r,
            br.x,
            br.b,
            br.rate_a,
            br.rate_a,
            br.rate_a,
            br.tap,
            br.shift,
            if br.status { 1 } else { 0 },
            br.angmin,
            br.angmax
        ));
    }
    out.push_str("];\n\n%% generator cost data\nmpc.gencost = [\n");
    for g in &case.generators {
        out.push_str(&format!(
            "\t2\t0\t0\t3\t{}\t{}\t{};\n",
            g.cost.c2, g.cost.c1, g.cost.c0
        ));
    }
    out.push_str("];\n");
    out
}

/// Convert a MATPOWER gencost row to a quadratic [`GenCost`].
fn parse_gencost(row: &[f64]) -> Result<GenCost, GridError> {
    if row.len() < 4 {
        return Err(GridError::Invalid("gencost row too short".into()));
    }
    let model = row[0] as i64;
    let n = row[3] as usize;
    let coeffs = &row[4..];
    match model {
        2 => {
            // Polynomial: coefficients from highest degree to constant.
            if coeffs.len() < n {
                return Err(GridError::Invalid("gencost polynomial truncated".into()));
            }
            let poly = &coeffs[..n];
            // Take the quadratic, linear and constant parts (highest-order
            // terms beyond quadratic are dropped; they are rare in practice).
            let c0 = poly.last().copied().unwrap_or(0.0);
            let c1 = if n >= 2 { poly[n - 2] } else { 0.0 };
            let c2 = if n >= 3 { poly[n - 3] } else { 0.0 };
            Ok(GenCost { c2, c1, c0 })
        }
        1 => {
            // Piecewise linear: (p_1, c_1, ..., p_n, c_n). Least-squares fit
            // of a quadratic through the breakpoints.
            if coeffs.len() < 2 * n || n < 2 {
                return Err(GridError::Invalid(
                    "piecewise cost needs >= 2 points".into(),
                ));
            }
            let pts: Vec<(f64, f64)> = (0..n).map(|k| (coeffs[2 * k], coeffs[2 * k + 1])).collect();
            Ok(fit_quadratic(&pts))
        }
        other => Err(GridError::Invalid(format!("unknown cost model {other}"))),
    }
}

/// Least-squares quadratic fit through `(p, cost)` points via the 3x3 normal
/// equations (falls back to a linear fit when the system is singular).
fn fit_quadratic(pts: &[(f64, f64)]) -> GenCost {
    let n = pts.len() as f64;
    let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
    let (mut t0, mut t1, mut t2) = (0.0, 0.0, 0.0);
    for &(p, c) in pts {
        s1 += p;
        s2 += p * p;
        s3 += p * p * p;
        s4 += p * p * p * p;
        t0 += c;
        t1 += c * p;
        t2 += c * p * p;
    }
    // Normal equations A * [c0, c1, c2]^T = b
    let a = [[n, s1, s2], [s1, s2, s3], [s2, s3, s4]];
    let b = [t0, t1, t2];
    match solve3(a, b) {
        Some([c0, c1, c2]) => GenCost { c2, c1, c0 },
        None => {
            // Degenerate: linear fit through first and last point.
            let (p0, c0) = pts[0];
            let (p1, c1v) = pts[pts.len() - 1];
            let slope = if (p1 - p0).abs() > 1e-12 {
                (c1v - c0) / (p1 - p0)
            } else {
                0.0
            };
            GenCost {
                c2: 0.0,
                c1: slope,
                c0: c0 - slope * p0,
            }
        }
    }
}

fn solve3(a: [[f64; 3]; 3], b: [f64; 3]) -> Option<[f64; 3]> {
    let det = |m: &[[f64; 3]; 3]| {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let d = det(&a);
    if d.abs() < 1e-10 {
        return None;
    }
    let mut out = [0.0; 3];
    for k in 0..3 {
        let mut ak = a;
        for r in 0..3 {
            ak[r][k] = b[r];
        }
        out[k] = det(&ak) / d;
    }
    Some(out)
}

/// Find the scalar assignment `mpc.<field> = value;`.
fn parse_scalar(text: &str, field: &str) -> Result<Option<f64>, GridError> {
    let needle = format!("mpc.{field}");
    for (ln, line) in text.lines().enumerate() {
        let line = strip_comment(line);
        if let Some(pos) = line.find(&needle) {
            if let Some(eq) = line[pos..].find('=') {
                let rhs = line[pos + eq + 1..].trim().trim_end_matches(';').trim();
                return rhs.parse::<f64>().map(Some).map_err(|_| GridError::Parse {
                    line: ln + 1,
                    message: format!("cannot parse scalar '{rhs}'"),
                });
            }
        }
    }
    Ok(None)
}

/// Find and parse the matrix assignment `mpc.<field> = [ ... ];`.
fn parse_matrix(text: &str, field: &str) -> Result<Option<Vec<Vec<f64>>>, GridError> {
    let needle = format!("mpc.{field}");
    let mut rows = Vec::new();
    let mut in_matrix = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let trimmed = line.trim();
        if !in_matrix {
            // Match "mpc.<field>" exactly (not a prefix of a longer name).
            if let Some(pos) = trimmed.find(&needle) {
                let after = &trimmed[pos + needle.len()..];
                let is_exact = after.trim_start().starts_with('=');
                if is_exact && trimmed.contains('[') {
                    in_matrix = true;
                    let after_bracket = &trimmed[trimmed.find('[').unwrap() + 1..];
                    if push_rows(after_bracket, &mut rows, ln)? {
                        return Ok(Some(rows));
                    }
                }
            }
        } else if push_rows(trimmed, &mut rows, ln)? {
            return Ok(Some(rows));
        }
    }
    if in_matrix {
        Err(GridError::Invalid(format!(
            "unterminated matrix mpc.{field}"
        )))
    } else {
        Ok(None)
    }
}

/// Parse rows out of a chunk of matrix body text. Returns true when the
/// closing bracket was seen.
fn push_rows(chunk: &str, rows: &mut Vec<Vec<f64>>, ln: usize) -> Result<bool, GridError> {
    let (body, done) = match chunk.find(']') {
        Some(p) => (&chunk[..p], true),
        None => (chunk, false),
    };
    for row_text in body.split(';') {
        let row_text = row_text.trim();
        if row_text.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for tok in row_text.split([' ', '\t', ',']) {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            row.push(tok.parse::<f64>().map_err(|_| GridError::Parse {
                line: ln + 1,
                message: format!("cannot parse number '{tok}'"),
            })?);
        }
        if !row.is_empty() {
            rows.push(row);
        }
    }
    Ok(done)
}

fn strip_comment(line: &str) -> &str {
    match line.find('%') {
        Some(p) => &line[..p],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    #[test]
    fn roundtrip_case9() {
        let case = cases::case9();
        let text = write_case(&case);
        let parsed = parse_case(&text, "case9").unwrap();
        assert_eq!(parsed.buses.len(), 9);
        assert_eq!(parsed.generators.len(), 3);
        assert_eq!(parsed.branches.len(), 9);
        assert!((parsed.base_mva - 100.0).abs() < 1e-12);
        assert!((parsed.total_load_mw() - case.total_load_mw()).abs() < 1e-9);
        // Cost curves survive the roundtrip.
        for (a, b) in case.generators.iter().zip(&parsed.generators) {
            assert!((a.cost.c2 - b.cost.c2).abs() < 1e-12);
            assert!((a.cost.c1 - b.cost.c1).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_preserves_network() {
        let case = cases::case14();
        let text = write_case(&case);
        let parsed = parse_case(&text, "case14").unwrap();
        let n1 = case.compile().unwrap();
        let n2 = parsed.compile().unwrap();
        assert_eq!(n1.nbus, n2.nbus);
        assert_eq!(n1.nbranch, n2.nbranch);
        for l in 0..n1.nbranch {
            assert!((n1.br_y[l].gii - n2.br_y[l].gii).abs() < 1e-12);
            assert!((n1.br_y[l].bij - n2.br_y[l].bij).abs() < 1e-12);
        }
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let text = r"
% a comment
function mpc = tiny
mpc.baseMVA = 100;  % MVA base
mpc.bus = [
    1  3  0    0  0 0 1 1.0 0 345 1 1.1 0.9;  % slack
    2  1  50  10  0 0 1 1.0 0 345 1 1.1 0.9;
];
mpc.gen = [
    1  30 0 80 -80 1.0 100 1 120 0;
];
mpc.branch = [
    1 2 0.01 0.1 0.0 100 100 100 0 0 1 -360 360;
];
mpc.gencost = [
    2 0 0 3 0.02 15 0;
];
";
        let case = parse_case(text, "tiny").unwrap();
        assert_eq!(case.buses.len(), 2);
        assert_eq!(case.generators.len(), 1);
        assert!((case.generators[0].cost.c1 - 15.0).abs() < 1e-12);
        assert!(case.compile().is_ok());
    }

    #[test]
    fn missing_bus_matrix_is_error() {
        let text = "mpc.baseMVA = 100;\n";
        assert!(parse_case(text, "bad").is_err());
    }

    #[test]
    fn malformed_number_reports_line() {
        let text = r"
mpc.baseMVA = 100;
mpc.bus = [
    1 3 0 0 0 0 1 1.0 0 345 1 1.1 0.9;
    2 1 xx 10 0 0 1 1.0 0 345 1 1.1 0.9;
];
mpc.gen = [ 1 30 0 80 -80 1.0 100 1 120 0; ];
mpc.branch = [ 1 2 0.01 0.1 0.0 100 100 100 0 0 1; ];
";
        match parse_case(text, "bad") {
            Err(GridError::Parse { line, .. }) => assert!(line >= 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn piecewise_cost_fit() {
        // Cost points on an exact quadratic 0.1 p^2 + 2 p should be recovered.
        let row = vec![1.0, 0.0, 0.0, 3.0, 0.0, 0.0, 50.0, 350.0, 100.0, 1200.0];
        let cost = parse_gencost(&row).unwrap();
        assert!((cost.c2 - 0.1).abs() < 1e-6, "c2 {}", cost.c2);
        assert!((cost.c1 - 2.0).abs() < 1e-4, "c1 {}", cost.c1);
    }

    #[test]
    fn polynomial_cost_degrees() {
        // Linear (n = 2).
        let lin = parse_gencost(&[2.0, 0.0, 0.0, 2.0, 12.5, 100.0]).unwrap();
        assert_eq!(lin.c2, 0.0);
        assert!((lin.c1 - 12.5).abs() < 1e-12);
        assert!((lin.c0 - 100.0).abs() < 1e-12);
        // Quadratic (n = 3).
        let quad = parse_gencost(&[2.0, 0.0, 0.0, 3.0, 0.11, 5.0, 150.0]).unwrap();
        assert!((quad.c2 - 0.11).abs() < 1e-12);
    }

    #[test]
    fn unterminated_matrix_is_error() {
        let text = "mpc.bus = [\n 1 3 0 0 0 0 1 1 0 345 1 1.1 0.9;\n";
        assert!(parse_matrix(text, "bus").is_err());
    }

    #[test]
    fn gencost_not_confused_with_gen() {
        // "mpc.gen" must not match "mpc.gencost" rows.
        let case = cases::case5();
        let text = write_case(&case);
        let parsed = parse_case(&text, "case5").unwrap();
        assert_eq!(parsed.generators.len(), case.generators.len());
        assert!((parsed.generators[0].pmax - case.generators[0].pmax).abs() < 1e-9);
    }
}
