//! Bus records in MATPOWER conventions (quantities in physical units).

use serde::{Deserialize, Serialize};

/// MATPOWER bus type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BusType {
    /// Load bus (PQ).
    Pq,
    /// Generator bus (PV).
    Pv,
    /// Reference (slack) bus.
    Ref,
    /// Isolated bus, excluded from the network.
    Isolated,
}

impl BusType {
    /// Decode the MATPOWER integer bus-type code.
    pub fn from_code(code: i64) -> Self {
        match code {
            2 => BusType::Pv,
            3 => BusType::Ref,
            4 => BusType::Isolated,
            _ => BusType::Pq,
        }
    }

    /// Encode to the MATPOWER integer bus-type code.
    pub fn to_code(self) -> i64 {
        match self {
            BusType::Pq => 1,
            BusType::Pv => 2,
            BusType::Ref => 3,
            BusType::Isolated => 4,
        }
    }
}

/// A single bus record. Powers are in MW/MVAr, voltages in per unit on
/// `base_kv`, shunts in MW/MVAr consumed at V = 1.0 p.u.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bus {
    /// External (user-facing) bus number. Not necessarily consecutive.
    pub id: usize,
    /// Bus type.
    pub bus_type: BusType,
    /// Real power demand (MW).
    pub pd: f64,
    /// Reactive power demand (MVAr).
    pub qd: f64,
    /// Shunt conductance (MW demanded at V = 1.0 p.u.).
    pub gs: f64,
    /// Shunt susceptance (MVAr injected at V = 1.0 p.u.).
    pub bs: f64,
    /// Area number.
    pub area: usize,
    /// Initial voltage magnitude (p.u.).
    pub vm: f64,
    /// Initial voltage angle (degrees).
    pub va: f64,
    /// Base voltage (kV).
    pub base_kv: f64,
    /// Loss zone.
    pub zone: usize,
    /// Maximum voltage magnitude (p.u.).
    pub vmax: f64,
    /// Minimum voltage magnitude (p.u.).
    pub vmin: f64,
}

impl Bus {
    /// A convenience constructor for a PQ bus with the given load and default
    /// voltage limits of [0.9, 1.1] p.u.
    pub fn load_bus(id: usize, pd: f64, qd: f64) -> Self {
        Bus {
            id,
            bus_type: BusType::Pq,
            pd,
            qd,
            gs: 0.0,
            bs: 0.0,
            area: 1,
            vm: 1.0,
            va: 0.0,
            base_kv: 345.0,
            zone: 1,
            vmax: 1.1,
            vmin: 0.9,
        }
    }

    /// True when this bus participates in the network.
    pub fn in_service(&self) -> bool {
        self.bus_type != BusType::Isolated
    }

    /// True if this bus has nonzero demand.
    pub fn has_load(&self) -> bool {
        self.pd != 0.0 || self.qd != 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_type_roundtrip() {
        for code in 1..=4 {
            assert_eq!(BusType::from_code(code).to_code(), code);
        }
    }

    #[test]
    fn unknown_code_is_pq() {
        assert_eq!(BusType::from_code(0), BusType::Pq);
        assert_eq!(BusType::from_code(99), BusType::Pq);
    }

    #[test]
    fn load_bus_defaults() {
        let b = Bus::load_bus(12, 90.0, 30.0);
        assert_eq!(b.id, 12);
        assert!(b.has_load());
        assert!(b.in_service());
        assert_eq!(b.vmax, 1.1);
        assert_eq!(b.vmin, 0.9);
    }

    #[test]
    fn isolated_bus_out_of_service() {
        let mut b = Bus::load_bus(1, 0.0, 0.0);
        assert!(!b.has_load());
        b.bus_type = BusType::Isolated;
        assert!(!b.in_service());
    }
}
