//! Crate-level integration tests of MATPOWER file I/O: write real case files
//! to disk, read them back through the public path-based API, and compile.

use gridsim_grid::{cases, matpower, SyntheticSpec};

#[test]
fn write_and_read_case9_via_filesystem() {
    let case = cases::case9();
    let dir = std::env::temp_dir().join("gridadmm_test_cases");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("case9_roundtrip.m");
    std::fs::write(&path, matpower::write_case(&case)).unwrap();

    let parsed = matpower::read_case(&path).unwrap();
    assert_eq!(parsed.name, "case9_roundtrip");
    assert_eq!(parsed.buses.len(), 9);
    let net = parsed.compile().unwrap();
    assert_eq!(net.nbranch, 9);
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_an_io_error() {
    let err = matpower::read_case(std::path::Path::new("/nonexistent/case.m")).unwrap_err();
    assert!(matches!(err, gridsim_grid::GridError::Io(_)));
}

#[test]
fn large_synthetic_case_roundtrips_through_disk() {
    let case = SyntheticSpec {
        name: "big".into(),
        nbus: 500,
        ngen: 80,
        nbranch: 700,
        seed: 99,
        ..Default::default()
    }
    .generate();
    let dir = std::env::temp_dir().join("gridadmm_test_cases");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("big.m");
    std::fs::write(&path, matpower::write_case(&case)).unwrap();
    let parsed = matpower::read_case(&path).unwrap();
    assert_eq!(parsed.buses.len(), 500);
    assert_eq!(parsed.branches.len(), 700);
    let n1 = case.compile().unwrap();
    let n2 = parsed.compile().unwrap();
    assert!((n1.total_pd() - n2.total_pd()).abs() < 1e-9);
    std::fs::remove_file(&path).ok();
}
