//! End-to-end interior-point solves of the embedded ACOPF cases.
//!
//! These tests establish the baseline solver used throughout the experiment
//! harness: the solutions must be feasible (power balance, bounds, line
//! limits) and economically sensible.

use gridsim_acopf::violations::SolutionQuality;
use gridsim_grid::cases;
use gridsim_ipm::{AcopfNlp, IpmOptions, IpmSolver};

fn solve_case(case: gridsim_grid::Case) -> (gridsim_grid::Network, gridsim_ipm::SolveReport) {
    let net = case.compile().unwrap();
    let report = {
        let nlp = AcopfNlp::new(&net);
        IpmSolver::new(IpmOptions {
            tol: 1e-6,
            max_iter: 300,
            ..Default::default()
        })
        .solve(&nlp)
    };
    (net, report)
}

#[test]
fn two_bus_acopf_is_feasible_and_covers_load_plus_losses() {
    let (net, report) = solve_case(cases::two_bus());
    assert!(report.is_optimal(), "status {:?}", report.status);
    let nlp = AcopfNlp::new(&net);
    let sol = nlp.to_solution(&report.x);
    let quality = SolutionQuality::evaluate(&net, &sol);
    assert!(
        quality.max_violation() < 1e-5,
        "violation {}",
        quality.max_violation()
    );
    // Generation covers the 0.8 p.u. load plus (small, positive) losses.
    assert!(sol.pg[0] > 0.8);
    assert!(sol.pg[0] < 0.85);
    // Voltages stay inside their limits.
    for b in 0..net.nbus {
        assert!(sol.vm[b] >= net.vmin[b] - 1e-8);
        assert!(sol.vm[b] <= net.vmax[b] + 1e-8);
    }
}

#[test]
fn case9_acopf_reaches_a_feasible_economic_dispatch() {
    let (net, report) = solve_case(cases::case9());
    assert!(report.is_optimal(), "status {:?}", report.status);
    let nlp = AcopfNlp::new(&net);
    let sol = nlp.to_solution(&report.x);
    let quality = SolutionQuality::evaluate(&net, &sol);
    assert!(
        quality.max_violation() < 1e-5,
        "violation {}",
        quality.max_violation()
    );
    // Total generation covers the 3.15 p.u. load plus losses.
    let total_pg: f64 = sol.pg.iter().sum();
    assert!(total_pg > 3.15 && total_pg < 3.4, "total pg {total_pg}");
    // The WSCC 9-bus economic dispatch is in the low-5000s $/hr range; a
    // crude proportional dispatch costs noticeably more.
    assert!(
        report.objective > 4500.0 && report.objective < 6000.0,
        "objective {}",
        report.objective
    );
    // The reported objective equals the solution's objective.
    assert!((report.objective - sol.objective(&net)).abs() < 1e-6);
}

#[test]
fn case14_acopf_is_feasible() {
    let (net, report) = solve_case(cases::case14());
    assert!(report.is_optimal(), "status {:?}", report.status);
    let nlp = AcopfNlp::new(&net);
    let sol = nlp.to_solution(&report.x);
    let quality = SolutionQuality::evaluate(&net, &sol);
    assert!(
        quality.max_violation() < 1e-5,
        "violation {}",
        quality.max_violation()
    );
    let total_pg: f64 = sol.pg.iter().sum();
    let total_load: f64 = net.total_pd();
    assert!(total_pg >= total_load, "generation must cover load");
    assert!(total_pg < total_load * 1.1, "losses should be modest");
}

#[test]
fn case9_warm_start_converges_quickly_after_small_load_change() {
    let base = cases::case9();
    let (net, cold_report) = solve_case(base.clone());
    assert!(cold_report.is_optimal());

    // Re-solve a 2 % higher load from the previous solution.
    let bumped = base.scale_load(1.02);
    let net2 = bumped.compile().unwrap();
    let nlp2 = AcopfNlp::new(&net2);
    let warm = IpmSolver::new(IpmOptions {
        tol: 1e-6,
        initial_point: Some(cold_report.x.clone()),
        ..Default::default()
    })
    .solve(&nlp2);
    assert!(warm.is_optimal());
    let sol = nlp2.to_solution(&warm.x);
    let quality = SolutionQuality::evaluate(&net2, &sol);
    assert!(quality.max_violation() < 1e-5);
    // The warm solve should not be dramatically slower than the cold solve
    // (the paper observes Ipopt gains little from warm starts, so we only
    // require it does not blow up).
    assert!(warm.iterations <= cold_report.iterations * 2 + 10);
    drop(net);
}

#[test]
fn tighter_line_limits_increase_cost() {
    // Artificially tighten every line rating of case9; the optimal cost
    // cannot decrease when the feasible set shrinks.
    let base = cases::case9();
    let (_, base_report) = solve_case(base.clone());
    assert!(base_report.is_optimal());

    let mut tight = base;
    for b in &mut tight.branches {
        b.rate_a *= 0.6;
    }
    let (_, tight_report) = solve_case(tight);
    assert!(
        tight_report.is_optimal(),
        "status {:?}",
        tight_report.status
    );
    assert!(
        tight_report.objective >= base_report.objective - 1e-3,
        "tightened problem must not be cheaper: {} vs {}",
        tight_report.objective,
        base_report.objective
    );
}
