//! Result and iteration-log types for the interior-point solver.

use std::time::Duration;

/// Termination status of an interior-point solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum IpmStatus {
    /// First-order optimality satisfied to the requested tolerance.
    Optimal,
    /// Iteration limit reached; the returned point is the best iterate.
    MaxIterations,
    /// The linear algebra failed irrecoverably (singular KKT even after the
    /// maximum regularization).
    NumericalError,
    /// The feasibility-restoration phase could not produce a filter-acceptable
    /// point: the iterate is stuck at a (possibly locally infeasible)
    /// stationary point of the constraint violation.
    RestorationFailure,
}

/// One row of the iteration log (what Ipopt prints per iteration).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IterationRecord {
    /// Iteration number.
    pub iter: usize,
    /// Objective value.
    pub objective: f64,
    /// Primal infeasibility (infinity norm of constraint violations).
    pub primal_infeasibility: f64,
    /// Dual infeasibility (infinity norm of the dual residual).
    pub dual_infeasibility: f64,
    /// Barrier parameter.
    pub mu: f64,
    /// Primal step length after the line search.
    pub alpha_primal: f64,
    /// Primal regularization used for this step.
    pub delta_w: f64,
}

/// Result of an interior-point solve.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SolveReport {
    /// Final primal point (original variables, without slacks).
    pub x: Vec<f64>,
    /// Objective value at the final point.
    pub objective: f64,
    /// Equality-constraint multipliers.
    pub lambda_eq: Vec<f64>,
    /// Inequality-constraint multipliers.
    pub lambda_ineq: Vec<f64>,
    /// Lower-bound multipliers over the slacked vector `v = [x; s]`
    /// (dimension `nx + m_ineq`; zero where the bound is infinite). Feed
    /// them back through
    /// [`IpmOptions::initial_bound_multipliers`](crate::IpmOptions::initial_bound_multipliers)
    /// to warm-start a related solve without losing the active set.
    pub zl: Vec<f64>,
    /// Upper-bound multipliers over `v = [x; s]`, like
    /// [`zl`](SolveReport::zl).
    pub zu: Vec<f64>,
    /// Termination status.
    pub status: IpmStatus,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final scaled KKT error.
    pub kkt_error: f64,
    /// Final primal infeasibility.
    pub primal_infeasibility: f64,
    /// Wall-clock time of the solve.
    pub solve_time: Duration,
    /// Total number of KKT factorizations (including inertia-correction
    /// refactorizations) — the quantity that dominates Ipopt's run time on
    /// ACOPF.
    pub factorizations: usize,
    /// Symbolic analyses performed during this solve. The full-KKT strategy
    /// pays one per factorization; the condensed strategy analyzes the
    /// frozen pattern once per NLP (plus rare structural-growth rebuilds)
    /// and runs numeric-only refactorizations afterwards.
    pub symbolic_analyses: usize,
    /// Trial steps rejected by the (φ, θ) filter line search (each rejection
    /// halves the step length or triggers a second-order correction).
    pub filter_rejections: usize,
    /// Second-order correction steps computed (extra triangular solves on an
    /// already-available factorization after a rejected full step).
    pub soc_steps: usize,
    /// Steps accepted on trust by the watchdog (non-monotone full steps taken
    /// while a relaxed-acceptance run is active).
    pub watchdog_steps: usize,
    /// Feasibility-restoration phases entered (last-resort minimization of
    /// the constraint violation when no acceptable step length remains).
    pub restorations: usize,
    /// Per-iteration log.
    pub log: Vec<IterationRecord>,
}

impl SolveReport {
    /// True when the solve reached the optimality tolerance.
    pub fn is_optimal(&self) -> bool {
        self.status == IpmStatus::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_optimal_reflects_status() {
        let report = SolveReport {
            x: vec![],
            objective: 0.0,
            lambda_eq: vec![],
            lambda_ineq: vec![],
            zl: vec![],
            zu: vec![],
            status: IpmStatus::Optimal,
            iterations: 3,
            kkt_error: 1e-9,
            primal_infeasibility: 1e-10,
            solve_time: Duration::ZERO,
            factorizations: 3,
            symbolic_analyses: 3,
            filter_rejections: 0,
            soc_steps: 0,
            watchdog_steps: 0,
            restorations: 0,
            log: vec![],
        };
        assert!(report.is_optimal());
        let mut not_done = report.clone();
        not_done.status = IpmStatus::MaxIterations;
        assert!(!not_done.is_optimal());
    }
}
