//! The interior-point scenario fleet on the solver-agnostic execution
//! engine.
//!
//! The ADMM side solves a fleet of scenarios through batched kernels; this
//! module gives the centralized baseline the same fleet treatment by
//! implementing [`gridsim_engine::LaneSolver`] for a set of ACOPF networks:
//! every admitted scenario becomes an [`AcopfNlp`] solved to completion
//! with [`IpmSolver::solve_with_cache`], and the engine streams pending
//! scenarios through the configured lanes.
//!
//! Two per-lane resources make a lane more than a loop index:
//!
//! * **one [`KktCache`] per lane** — every scenario of a set shares the
//!   base network's topology, so the condensed-KKT pattern of each lane's
//!   admission stream is identical and the lane's whole stream costs **one
//!   symbolic analysis** ([`crate::KktStrategy::Condensed`]). Fleet-wide, symbolic
//!   analyses scale with the *lane count*, not the scenario count —
//!   [`FleetReport::symbolic_analyses`] vs [`FleetReport::lanes`] is the
//!   tested invariant (a scenario whose constraint *structure* differs,
//!   e.g. an outage lifting a line limit, costs its lane one extra
//!   analysis; load ramps and perturbations cost none),
//! * **warm-start carry** — each admission starts from the lane's previous
//!   primal/dual point, so a lane behaves like a tracking chain even
//!   though the fleet as a whole runs wide.
//!
//! Because warm starts chain *within* a lane, per-scenario iterates depend
//! on the device/lane configuration (unlike the ADMM fleet, whose lanes
//! are arithmetically isolated): at one device and one lane the fleet is
//! bitwise identical to a sequential [`IpmSolver::solve_with_cache`] loop
//! over the scenarios, and across configurations the converged reports
//! agree to solver tolerance. Both are asserted in `tests/ipm_fleet.rs`.

use crate::acopf_nlp::AcopfNlp;
use crate::kkt_condensed::KktCache;
use crate::report::SolveReport;
use crate::solver::{IpmOptions, IpmSolver};
use gridsim_acopf::solution::OpfSolution;
use gridsim_acopf::violations::SolutionQuality;
use gridsim_batch::{Device, DeviceConfig, DevicePool};
use gridsim_engine::{Engine, FleetRequest, LaneSolver, StoreAccess};
use gridsim_grid::fingerprint::ScenarioFingerprint;
use gridsim_grid::network::Network;
use gridsim_store::{StoreRunStats, StoreView};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// The interior-point payload a [`gridsim_store::SolutionStore`] keeps per solved
/// scenario: the converged primal point, the stacked
/// equality-then-inequality multipliers, and the bound multipliers —
/// exactly what [`IpmOptions::initial_point`] /
/// [`IpmOptions::initial_multipliers`] /
/// [`IpmOptions::initial_bound_multipliers`] accept. Carrying the bound
/// multipliers is what makes the reuse pay: they hold the donor's active
/// set and terminal barrier level, so a seeded solve resumes the μ
/// trajectory instead of descending from `mu_init` again.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IpmWarmStart {
    /// Converged primal variables.
    pub x: Vec<f64>,
    /// Stacked multipliers: `lambda_eq` followed by `lambda_ineq`.
    pub lambda: Vec<f64>,
    /// Lower-bound multipliers over `v = [x; s]`.
    pub zl: Vec<f64>,
    /// Upper-bound multipliers over `v = [x; s]`.
    pub zu: Vec<f64>,
}

impl IpmWarmStart {
    /// The warm-start payload of a converged report — what
    /// [`IpmFleetSolver::run`] commits to a bound store, exposed so a
    /// caller owning the write side (a [`StoreAccess::Snapshot`] consumer,
    /// e.g. a durable job layer) can commit identical payloads itself.
    pub fn from_report(report: &SolveReport) -> IpmWarmStart {
        IpmWarmStart {
            x: report.x.clone(),
            lambda: report
                .lambda_eq
                .iter()
                .chain(report.lambda_ineq.iter())
                .copied()
                .collect(),
            zl: report.zl.clone(),
            zu: report.zu.clone(),
        }
    }
}

/// One scenario's result inside a fleet solve.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FleetScenarioResult {
    /// Name of the scenario's network.
    pub name: String,
    /// The extracted operating point.
    pub solution: OpfSolution,
    /// Solution-quality metrics.
    pub quality: SolutionQuality,
    /// The full interior-point report (iterations, factorizations,
    /// symbolic analyses billed to this solve, status, log).
    pub report: SolveReport,
}

/// Aggregated result of an interior-point fleet solve.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-scenario results, in input order.
    pub results: Vec<FleetScenarioResult>,
    /// Wall-clock time of the whole fleet.
    pub solve_time: Duration,
    /// Engine ticks: admission rounds of the longest device (each tick
    /// solves every active lane's current scenario to completion).
    pub ticks: usize,
    /// Total lanes the engine opened across devices — the number of
    /// independent warm-start chains and [`KktCache`]s.
    pub lanes: usize,
    /// Solution-store traffic for this run: admissions seeded from a stored
    /// neighbor (hits), admissions that consulted the store without being
    /// seeded from it (misses), and converged solves committed back
    /// (inserts). All zero for a store-less request.
    pub store: StoreRunStats,
}

impl FleetReport {
    /// Symbolic analyses across the fleet (each solve bills the analyses it
    /// triggered, so the sum is the fleet total). Under
    /// [`KktStrategy::Condensed`](crate::KktStrategy::Condensed) with
    /// structurally identical scenarios this equals [`FleetReport::lanes`].
    pub fn symbolic_analyses(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.report.symbolic_analyses)
            .sum()
    }

    /// Total KKT factorizations across the fleet.
    pub fn factorizations(&self) -> usize {
        self.results.iter().map(|r| r.report.factorizations).sum()
    }

    /// Total interior-point iterations across the fleet.
    pub fn total_iterations(&self) -> usize {
        self.results.iter().map(|r| r.report.iterations).sum()
    }

    /// Total filter line-search rejections across the fleet — trial steps
    /// the globalization refused (and re-tried shorter or via second-order
    /// correction). A benign-case fleet reports 0; nonzero totals flag which
    /// scenario sets actually exercise the filter.
    pub fn filter_rejections(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.report.filter_rejections)
            .sum()
    }

    /// Total accepted second-order correction steps across the fleet.
    pub fn soc_steps(&self) -> usize {
        self.results.iter().map(|r| r.report.soc_steps).sum()
    }

    /// Total watchdog (non-monotone) acceptances across the fleet.
    pub fn watchdog_steps(&self) -> usize {
        self.results.iter().map(|r| r.report.watchdog_steps).sum()
    }

    /// Total feasibility-restoration phases entered across the fleet.
    pub fn restorations(&self) -> usize {
        self.results.iter().map(|r| r.report.restorations).sum()
    }

    /// True when every scenario reached optimality.
    pub fn all_optimal(&self) -> bool {
        self.results.iter().all(|r| r.report.is_optimal())
    }

    /// Worst max-violation across scenarios.
    pub fn worst_violation(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.quality.max_violation())
            .fold(0.0, f64::max)
    }
}

/// The interior-point fleet driver: solve many scenarios of one network
/// family through the execution engine, one warm-start chain and one
/// [`KktCache`] per lane.
#[derive(Debug, Clone)]
pub struct IpmFleetSolver {
    /// Options applied to every scenario solve. Per-lane warm starts
    /// override `initial_point`/`initial_multipliers` from the second
    /// admission of each lane onward; set
    /// [`KktStrategy::Condensed`](crate::KktStrategy::Condensed) to get the
    /// one-symbolic-analysis-per-lane economics.
    pub options: IpmOptions,
    /// The execution engine (device pool + lane policy).
    pub engine: Engine,
}

impl IpmFleetSolver {
    /// A fleet solver on the environment-selected engine (`GRIDSIM_DEVICES`
    /// logical devices, no lane cap).
    pub fn new(options: IpmOptions) -> Self {
        IpmFleetSolver {
            options,
            engine: Engine::from_env(),
        }
    }

    /// A fleet solver on a specific engine.
    pub fn with_engine(options: IpmOptions, engine: Engine) -> Self {
        IpmFleetSolver { options, engine }
    }

    /// Solve one [`FleetRequest`]; results come back in input order.
    /// Networks should share one topology (a
    /// [`gridsim_grid::scenario::ScenarioSet`] guarantees it) —
    /// structurally divergent scenarios still solve correctly but cost
    /// their lane extra symbolic analyses.
    ///
    /// With a [`StoreAccess::Live`] binding, every admission consults the
    /// store and seeds the lane from the nearest stored neighbor when that
    /// neighbor is closer (in RMS load distance) than the lane's own
    /// chained point, and every converged solve is committed back under the
    /// request's case id after the run. Determinism: lookups go against a
    /// [`StoreView`] snapshot frozen before the run (this run's own results
    /// are invisible to its lookups), and inserts commit in input order
    /// afterwards — so the post-run store contents are independent of
    /// device count, lane caps, and thread timing, and re-running with
    /// identical store contents and engine configuration reproduces results
    /// bitwise. A [`StoreAccess::Snapshot`] binding does the lookup side
    /// only: nothing is committed, the caller owns the write side.
    ///
    /// A [`FleetRequest::mode`] override rebuilds this fleet's devices on
    /// the requested backend (same device count and lane cap) for this run.
    pub fn run(&self, request: FleetRequest<'_, IpmWarmStart>) -> FleetReport {
        let nets = request.nets;
        assert!(!nets.is_empty(), "need at least one scenario");
        let engine = match request.mode {
            Some(mode) => {
                let pool = DevicePool::new(self.engine.pool().len(), DeviceConfig::with_mode(mode));
                let mut e = Engine::with_pool(pool);
                if let Some(lanes) = self.engine.lanes_per_device() {
                    e = e.with_lanes(lanes);
                }
                e
            }
            None => self.engine.clone(),
        };
        let case_id = request.store_case_id();
        match request.store {
            StoreAccess::None => self.execute(&engine, nets, None),
            StoreAccess::Snapshot(view) => {
                let fps: Vec<ScenarioFingerprint> =
                    nets.iter().map(ScenarioFingerprint::of_network).collect();
                self.execute(
                    &engine,
                    nets,
                    Some((case_id.expect("store_case_id checked"), view, &fps)),
                )
            }
            StoreAccess::Live(store) => {
                let case_id = case_id.expect("store_case_id checked");
                let fps: Vec<ScenarioFingerprint> =
                    nets.iter().map(ScenarioFingerprint::of_network).collect();
                let view = store.view();
                let mut report = self.execute(&engine, nets, Some((case_id, &view, &fps)));
                // Commit converged solves back in input order: deterministic
                // store contents regardless of which device solved what when.
                for (fp, r) in fps.iter().zip(&report.results) {
                    if r.report.is_optimal() {
                        store.insert(case_id, fp, IpmWarmStart::from_report(&r.report));
                        report.store.inserts += 1;
                    }
                }
                report
            }
        }
    }

    /// Drive the engine over `nets`, with lookups against `binding`'s
    /// frozen view when present. Commits nothing.
    fn execute(
        &self,
        engine: &Engine,
        nets: &[Network],
        binding: Option<(&str, &StoreView<IpmWarmStart>, &[ScenarioFingerprint])>,
    ) -> FleetReport {
        let fleet = IpmFleet {
            options: &self.options,
            nets,
            store: binding.map(|(case_id, view, fps)| StoreBinding {
                case_id,
                view,
                fps,
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
            }),
        };
        let run = engine.run(&fleet, nets.len());
        let store = fleet
            .store
            .as_ref()
            .map_or_else(StoreRunStats::default, |b| StoreRunStats {
                hits: b.hits.load(Ordering::Relaxed),
                misses: b.misses.load(Ordering::Relaxed),
                inserts: 0,
            });
        FleetReport {
            results: run.outputs,
            solve_time: run.solve_time,
            ticks: run.ticks,
            lanes: engine.total_lanes(nets.len()),
            store,
        }
    }
}

/// The store side of one fleet run: the frozen lookup snapshot, the
/// scenarios' fingerprints, and the run's traffic counters (atomics: lanes
/// on different devices admit concurrently, and sums are order-independent
/// so the totals stay deterministic).
struct StoreBinding<'a> {
    case_id: &'a str,
    view: &'a StoreView<IpmWarmStart>,
    fps: &'a [ScenarioFingerprint],
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// The borrowed per-run view the engine drives.
struct IpmFleet<'a> {
    options: &'a IpmOptions,
    nets: &'a [Network],
    store: Option<StoreBinding<'a>>,
}

/// One lane: its symbolic-analysis cache, its warm-start carry, and the
/// scenario currently admitted or just finished.
struct IpmLane {
    cache: KktCache,
    warm_x: Option<Vec<f64>>,
    warm_lambda: Option<Vec<f64>>,
    warm_z: Option<(Vec<f64>, Vec<f64>)>,
    /// The scenario whose converged point `warm_x`/`warm_lambda` currently
    /// hold — the lane's chain anchor, which a store hit must beat (in RMS
    /// load distance to the incoming scenario) to replace the carry.
    chain_scenario: Option<usize>,
    admitted: Option<usize>,
    finished: Option<SolveReport>,
}

impl IpmLane {
    fn open(scenario: usize) -> IpmLane {
        IpmLane {
            cache: KktCache::new(),
            warm_x: None,
            warm_lambda: None,
            warm_z: None,
            chain_scenario: None,
            admitted: Some(scenario),
            finished: None,
        }
    }
}

/// One device's shard of lanes.
struct IpmShard {
    device: Device,
    lanes: Vec<IpmLane>,
}

impl LaneSolver for IpmFleet<'_> {
    type Shard = IpmShard;
    type Output = FleetScenarioResult;

    fn open_shard(&self, device: &Device, initial: &[usize]) -> IpmShard {
        IpmShard {
            device: device.clone(),
            lanes: initial.iter().map(|&idx| IpmLane::open(idx)).collect(),
        }
    }

    fn step(&self, shard: &mut IpmShard, active: &[bool]) -> Vec<bool> {
        let mut finished = vec![false; shard.lanes.len()];
        for (s, lane) in shard.lanes.iter_mut().enumerate() {
            if !active[s] {
                continue;
            }
            let idx = lane
                .admitted
                .take()
                .expect("active lane holds an admitted scenario");
            let nlp = AcopfNlp::new(&self.nets[idx]);
            let mut options = self.options.clone();
            // The lane's previous point beats any caller-supplied warm
            // start; on the lane's first admission the caller's (or the
            // NLP's own) initial point applies.
            options.initial_point = lane.warm_x.take().or(options.initial_point);
            options.initial_multipliers = lane.warm_lambda.take().or(options.initial_multipliers);
            options.initial_bound_multipliers =
                lane.warm_z.take().or(options.initial_bound_multipliers);
            let solver = IpmSolver {
                options,
                device: shard.device.clone(),
            };
            let report = solver.solve_with_cache(&nlp, &mut lane.cache);
            lane.warm_x = Some(report.x.clone());
            lane.warm_lambda = Some(
                report
                    .lambda_eq
                    .iter()
                    .chain(report.lambda_ineq.iter())
                    .copied()
                    .collect(),
            );
            lane.warm_z = Some((report.zl.clone(), report.zu.clone()));
            lane.chain_scenario = Some(idx);
            lane.finished = Some(report);
            finished[s] = true;
        }
        finished
    }

    fn extract(&self, shard: &mut IpmShard, slot: usize, scenario: usize) -> FleetScenarioResult {
        let report = shard.lanes[slot]
            .finished
            .take()
            .expect("extract follows a finishing step");
        let net = &self.nets[scenario];
        let solution = AcopfNlp::new(net).to_solution(&report.x);
        let quality = SolutionQuality::evaluate(net, &solution);
        FleetScenarioResult {
            name: net.name.clone(),
            solution,
            quality,
            report,
        }
    }

    fn admit(&self, shard: &mut IpmShard, slot: usize, scenario: usize) {
        shard.lanes[slot].admitted = Some(scenario);
    }

    fn on_admit(&self, shard: &mut IpmShard, slot: usize, scenario: usize) {
        let Some(binding) = &self.store else {
            return;
        };
        let fp = &binding.fps[scenario];
        let lane = &mut shard.lanes[slot];
        // The lane chain's distance to the incoming scenario; an absent or
        // structurally incompatible chain never beats a store hit.
        let chain_distance = lane.chain_scenario.map_or(f64::INFINITY, |prev| {
            let pfp = &binding.fps[prev];
            if pfp.structure == fp.structure {
                pfp.distance(fp)
            } else {
                f64::INFINITY
            }
        });
        match binding.view.nearest(binding.case_id, fp) {
            // Strictly closer than the chain: seed the lane from the store.
            // Ties keep the chain (it is already resident in the lane).
            Some(hit) if hit.distance < chain_distance => {
                lane.warm_x = Some(hit.entry.payload.x.clone());
                lane.warm_lambda = Some(hit.entry.payload.lambda.clone());
                lane.warm_z = Some((hit.entry.payload.zl.clone(), hit.entry.payload.zu.clone()));
                binding.hits.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                binding.misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kkt_condensed::KktStrategy;
    use gridsim_batch::DevicePool;
    use gridsim_grid::cases;
    use gridsim_grid::scenario::ScenarioSet;
    use gridsim_store::SolutionStore;

    fn condensed() -> IpmOptions {
        IpmOptions {
            kkt_strategy: KktStrategy::Condensed,
            ..Default::default()
        }
    }

    #[test]
    fn fleet_solves_a_load_ramp_and_pays_one_analysis_per_lane() {
        let nets = ScenarioSet::load_ramp(cases::case9(), 4, 0.98, 1.02)
            .networks()
            .unwrap();
        let engine = Engine::with_pool(DevicePool::parallel(2)).with_lanes(1);
        let fleet = IpmFleetSolver::with_engine(condensed(), engine).run(FleetRequest::over(&nets));
        assert_eq!(fleet.results.len(), 4);
        assert!(fleet.all_optimal(), "a scenario failed to converge");
        assert_eq!(fleet.lanes, 2);
        // 2 lanes for 4 scenarios: two symbolic analyses, not four.
        assert_eq!(fleet.symbolic_analyses(), fleet.lanes);
        assert!(fleet.factorizations() > fleet.symbolic_analyses());
        // Input-order results: the ramp's objectives rise with load.
        let objs: Vec<f64> = fleet.results.iter().map(|r| r.report.objective).collect();
        assert!(objs.windows(2).all(|w| w[0] < w[1]), "objectives {objs:?}");
        // Streaming admission: 2 rounds through 2 lanes.
        assert_eq!(fleet.ticks, 2);
        // A benign load ramp never trips the globalization safeguards; the
        // aggregated counters exist to flag scenario sets that do.
        assert_eq!(fleet.restorations(), 0);
        assert_eq!(
            fleet.filter_rejections(),
            fleet
                .results
                .iter()
                .map(|r| r.report.filter_rejections)
                .sum::<usize>()
        );
    }

    #[test]
    fn warm_start_carry_speeds_up_the_second_admission() {
        let nets = ScenarioSet::load_ramp(cases::case9(), 2, 1.0, 1.005)
            .networks()
            .unwrap();
        let engine = Engine::with_pool(DevicePool::parallel(1)).with_lanes(1);
        let fleet = IpmFleetSolver::with_engine(condensed(), engine).run(FleetRequest::over(&nets));
        assert!(fleet.all_optimal());
        // The second scenario rides the first one's primal/dual point and
        // the lane's frozen pattern: no new analysis, no more iterations
        // than the cold start.
        assert_eq!(fleet.results[1].report.symbolic_analyses, 0);
        assert!(
            fleet.results[1].report.iterations <= fleet.results[0].report.iterations,
            "warm {} vs cold {}",
            fleet.results[1].report.iterations,
            fleet.results[0].report.iterations
        );
    }

    #[test]
    fn full_strategy_fleet_still_solves() {
        let nets = ScenarioSet::load_ramp(cases::case9(), 2, 0.99, 1.01)
            .networks()
            .unwrap();
        let fleet = IpmFleetSolver::with_engine(
            IpmOptions::default(),
            Engine::with_pool(DevicePool::parallel(1)),
        )
        .run(FleetRequest::over(&nets));
        assert!(fleet.all_optimal());
        // The full path pays a symbolic analysis per factorization.
        assert_eq!(fleet.symbolic_analyses(), fleet.factorizations());
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn empty_fleet_is_rejected() {
        let _ = IpmFleetSolver::new(condensed()).run(FleetRequest::over(&[]));
    }

    #[test]
    fn empty_store_run_matches_plain_solve_bitwise_and_fills_the_store() {
        let nets = ScenarioSet::load_ramp(cases::case9(), 3, 0.99, 1.01)
            .networks()
            .unwrap();
        let engine = Engine::with_pool(DevicePool::parallel(1)).with_lanes(1);
        let solver = IpmFleetSolver::with_engine(condensed(), engine);
        let plain = solver.run(FleetRequest::over(&nets));
        let mut store = SolutionStore::new();
        let stored = solver.run(FleetRequest::over(&nets).case("case9").store(&mut store));
        // An empty store changes nothing about the solves…
        assert_eq!(stored.store.hits, 0);
        assert_eq!(stored.store.misses, nets.len());
        for (a, b) in plain.results.iter().zip(&stored.results) {
            assert_eq!(a.report.iterations, b.report.iterations);
            assert_eq!(a.report.x, b.report.x, "{}", a.name);
        }
        // …but every converged solve is committed back, in input order.
        assert_eq!(stored.store.inserts, nets.len());
        assert_eq!(store.len(), nets.len());
        assert_eq!(store.group_count(), 1, "one structure class for a ramp");
    }

    #[test]
    fn warm_store_rerun_hits_and_converges_to_the_same_solution() {
        let nets = ScenarioSet::load_ramp(cases::case9(), 3, 0.99, 1.01)
            .networks()
            .unwrap();
        let engine = Engine::with_pool(DevicePool::parallel(1)).with_lanes(1);
        let solver = IpmFleetSolver::with_engine(condensed(), engine);
        let mut store = SolutionStore::new();
        let cold = solver.run(FleetRequest::over(&nets).case("case9").store(&mut store));
        let warm = solver.run(FleetRequest::over(&nets).case("case9").store(&mut store));
        assert!(warm.all_optimal());
        // Every scenario now has a distance-0 neighbor: all hits, and the
        // exact-duplicate re-inserts replace rather than grow the store.
        assert_eq!(warm.store.hits, nets.len());
        assert_eq!(store.len(), nets.len());
        // Warm solves start at the answer: no more iterations than cold,
        // and the same solution to solver tolerance.
        assert!(warm.total_iterations() <= cold.total_iterations());
        for (c, w) in cold.results.iter().zip(&warm.results) {
            assert!(
                (c.report.objective - w.report.objective).abs()
                    <= 1e-6 * (1.0 + c.report.objective.abs()),
                "{}: cold {} vs warm {}",
                c.name,
                c.report.objective,
                w.report.objective
            );
        }
    }

    #[test]
    fn store_hit_beats_a_farther_lane_chain() {
        // One lane solving a near pair after a far scenario: the chain
        // anchor is far, the stored neighbor is exact.
        let base = cases::case9();
        let far = base.scale_load(1.06).compile().unwrap();
        let near = base.scale_load(1.001).compile().unwrap();
        let engine = Engine::with_pool(DevicePool::parallel(1)).with_lanes(1);
        let solver = IpmFleetSolver::with_engine(condensed(), engine);
        let mut store = SolutionStore::new();
        // Prime the store with the near scenario's solution.
        let prime = solver.run(
            FleetRequest::over(std::slice::from_ref(&near))
                .case("case9")
                .store(&mut store),
        );
        assert!(prime.all_optimal());
        // Far then near on one lane: without the store the near solve would
        // chain from the far point; with it, the admission takes the
        // distance-0 stored neighbor instead.
        let run = solver.run(
            FleetRequest::over(&[far, near])
                .case("case9")
                .store(&mut store),
        );
        assert!(run.all_optimal());
        assert_eq!(run.store.hits + run.store.misses, 2);
        assert!(run.store.hits >= 1, "the near admission must hit");
    }
}
