//! The interior-point scenario fleet on the solver-agnostic execution
//! engine.
//!
//! The ADMM side solves a fleet of scenarios through batched kernels; this
//! module gives the centralized baseline the same fleet treatment by
//! implementing [`gridsim_engine::LaneSolver`] for a set of ACOPF networks:
//! every admitted scenario becomes an [`AcopfNlp`] solved to completion
//! with [`IpmSolver::solve_with_cache`], and the engine streams pending
//! scenarios through the configured lanes.
//!
//! Two per-lane resources make a lane more than a loop index:
//!
//! * **one [`KktCache`] per lane** — every scenario of a set shares the
//!   base network's topology, so the condensed-KKT pattern of each lane's
//!   admission stream is identical and the lane's whole stream costs **one
//!   symbolic analysis** ([`crate::KktStrategy::Condensed`]). Fleet-wide, symbolic
//!   analyses scale with the *lane count*, not the scenario count —
//!   [`FleetReport::symbolic_analyses`] vs [`FleetReport::lanes`] is the
//!   tested invariant (a scenario whose constraint *structure* differs,
//!   e.g. an outage lifting a line limit, costs its lane one extra
//!   analysis; load ramps and perturbations cost none),
//! * **warm-start carry** — each admission starts from the lane's previous
//!   primal/dual point, so a lane behaves like a tracking chain even
//!   though the fleet as a whole runs wide.
//!
//! Because warm starts chain *within* a lane, per-scenario iterates depend
//! on the device/lane configuration (unlike the ADMM fleet, whose lanes
//! are arithmetically isolated): at one device and one lane the fleet is
//! bitwise identical to a sequential [`IpmSolver::solve_with_cache`] loop
//! over the scenarios, and across configurations the converged reports
//! agree to solver tolerance. Both are asserted in `tests/ipm_fleet.rs`.

use crate::acopf_nlp::AcopfNlp;
use crate::kkt_condensed::KktCache;
use crate::report::SolveReport;
use crate::solver::{IpmOptions, IpmSolver};
use gridsim_acopf::solution::OpfSolution;
use gridsim_acopf::violations::SolutionQuality;
use gridsim_batch::Device;
use gridsim_engine::{Engine, LaneSolver};
use gridsim_grid::network::Network;
use std::time::Duration;

/// One scenario's result inside a fleet solve.
#[derive(Debug, Clone)]
pub struct FleetScenarioResult {
    /// Name of the scenario's network.
    pub name: String,
    /// The extracted operating point.
    pub solution: OpfSolution,
    /// Solution-quality metrics.
    pub quality: SolutionQuality,
    /// The full interior-point report (iterations, factorizations,
    /// symbolic analyses billed to this solve, status, log).
    pub report: SolveReport,
}

/// Aggregated result of an interior-point fleet solve.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-scenario results, in input order.
    pub results: Vec<FleetScenarioResult>,
    /// Wall-clock time of the whole fleet.
    pub solve_time: Duration,
    /// Engine ticks: admission rounds of the longest device (each tick
    /// solves every active lane's current scenario to completion).
    pub ticks: usize,
    /// Total lanes the engine opened across devices — the number of
    /// independent warm-start chains and [`KktCache`]s.
    pub lanes: usize,
}

impl FleetReport {
    /// Symbolic analyses across the fleet (each solve bills the analyses it
    /// triggered, so the sum is the fleet total). Under
    /// [`KktStrategy::Condensed`](crate::KktStrategy::Condensed) with
    /// structurally identical scenarios this equals [`FleetReport::lanes`].
    pub fn symbolic_analyses(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.report.symbolic_analyses)
            .sum()
    }

    /// Total KKT factorizations across the fleet.
    pub fn factorizations(&self) -> usize {
        self.results.iter().map(|r| r.report.factorizations).sum()
    }

    /// Total interior-point iterations across the fleet.
    pub fn total_iterations(&self) -> usize {
        self.results.iter().map(|r| r.report.iterations).sum()
    }

    /// Total filter line-search rejections across the fleet — trial steps
    /// the globalization refused (and re-tried shorter or via second-order
    /// correction). A benign-case fleet reports 0; nonzero totals flag which
    /// scenario sets actually exercise the filter.
    pub fn filter_rejections(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.report.filter_rejections)
            .sum()
    }

    /// Total accepted second-order correction steps across the fleet.
    pub fn soc_steps(&self) -> usize {
        self.results.iter().map(|r| r.report.soc_steps).sum()
    }

    /// Total watchdog (non-monotone) acceptances across the fleet.
    pub fn watchdog_steps(&self) -> usize {
        self.results.iter().map(|r| r.report.watchdog_steps).sum()
    }

    /// Total feasibility-restoration phases entered across the fleet.
    pub fn restorations(&self) -> usize {
        self.results.iter().map(|r| r.report.restorations).sum()
    }

    /// True when every scenario reached optimality.
    pub fn all_optimal(&self) -> bool {
        self.results.iter().all(|r| r.report.is_optimal())
    }

    /// Worst max-violation across scenarios.
    pub fn worst_violation(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.quality.max_violation())
            .fold(0.0, f64::max)
    }
}

/// The interior-point fleet driver: solve many scenarios of one network
/// family through the execution engine, one warm-start chain and one
/// [`KktCache`] per lane.
#[derive(Debug, Clone)]
pub struct IpmFleetSolver {
    /// Options applied to every scenario solve. Per-lane warm starts
    /// override `initial_point`/`initial_multipliers` from the second
    /// admission of each lane onward; set
    /// [`KktStrategy::Condensed`](crate::KktStrategy::Condensed) to get the
    /// one-symbolic-analysis-per-lane economics.
    pub options: IpmOptions,
    /// The execution engine (device pool + lane policy).
    pub engine: Engine,
}

impl IpmFleetSolver {
    /// A fleet solver on the environment-selected engine (`GRIDSIM_DEVICES`
    /// logical devices, no lane cap).
    pub fn new(options: IpmOptions) -> Self {
        IpmFleetSolver {
            options,
            engine: Engine::from_env(),
        }
    }

    /// A fleet solver on a specific engine.
    pub fn with_engine(options: IpmOptions, engine: Engine) -> Self {
        IpmFleetSolver { options, engine }
    }

    /// Solve all scenarios; results come back in input order. Networks
    /// should share one topology (a [`gridsim_grid::scenario::ScenarioSet`]
    /// guarantees it) — structurally divergent scenarios still solve
    /// correctly but cost their lane extra symbolic analyses.
    pub fn solve(&self, nets: &[Network]) -> FleetReport {
        assert!(!nets.is_empty(), "need at least one scenario");
        let fleet = IpmFleet {
            options: &self.options,
            nets,
        };
        let run = self.engine.run(&fleet, nets.len());
        FleetReport {
            results: run.outputs,
            solve_time: run.solve_time,
            ticks: run.ticks,
            lanes: self.engine.total_lanes(nets.len()),
        }
    }
}

/// The borrowed per-run view the engine drives.
struct IpmFleet<'a> {
    options: &'a IpmOptions,
    nets: &'a [Network],
}

/// One lane: its symbolic-analysis cache, its warm-start carry, and the
/// scenario currently admitted or just finished.
struct IpmLane {
    cache: KktCache,
    warm_x: Option<Vec<f64>>,
    warm_lambda: Option<Vec<f64>>,
    admitted: Option<usize>,
    finished: Option<SolveReport>,
}

impl IpmLane {
    fn open(scenario: usize) -> IpmLane {
        IpmLane {
            cache: KktCache::new(),
            warm_x: None,
            warm_lambda: None,
            admitted: Some(scenario),
            finished: None,
        }
    }
}

/// One device's shard of lanes.
struct IpmShard {
    device: Device,
    lanes: Vec<IpmLane>,
}

impl LaneSolver for IpmFleet<'_> {
    type Shard = IpmShard;
    type Output = FleetScenarioResult;

    fn open_shard(&self, device: &Device, initial: &[usize]) -> IpmShard {
        IpmShard {
            device: device.clone(),
            lanes: initial.iter().map(|&idx| IpmLane::open(idx)).collect(),
        }
    }

    fn step(&self, shard: &mut IpmShard, active: &[bool]) -> Vec<bool> {
        let mut finished = vec![false; shard.lanes.len()];
        for (s, lane) in shard.lanes.iter_mut().enumerate() {
            if !active[s] {
                continue;
            }
            let idx = lane
                .admitted
                .take()
                .expect("active lane holds an admitted scenario");
            let nlp = AcopfNlp::new(&self.nets[idx]);
            let mut options = self.options.clone();
            // The lane's previous point beats any caller-supplied warm
            // start; on the lane's first admission the caller's (or the
            // NLP's own) initial point applies.
            options.initial_point = lane.warm_x.take().or(options.initial_point);
            options.initial_multipliers = lane.warm_lambda.take().or(options.initial_multipliers);
            let solver = IpmSolver {
                options,
                device: shard.device.clone(),
            };
            let report = solver.solve_with_cache(&nlp, &mut lane.cache);
            lane.warm_x = Some(report.x.clone());
            lane.warm_lambda = Some(
                report
                    .lambda_eq
                    .iter()
                    .chain(report.lambda_ineq.iter())
                    .copied()
                    .collect(),
            );
            lane.finished = Some(report);
            finished[s] = true;
        }
        finished
    }

    fn extract(&self, shard: &mut IpmShard, slot: usize, scenario: usize) -> FleetScenarioResult {
        let report = shard.lanes[slot]
            .finished
            .take()
            .expect("extract follows a finishing step");
        let net = &self.nets[scenario];
        let solution = AcopfNlp::new(net).to_solution(&report.x);
        let quality = SolutionQuality::evaluate(net, &solution);
        FleetScenarioResult {
            name: net.name.clone(),
            solution,
            quality,
            report,
        }
    }

    fn admit(&self, shard: &mut IpmShard, slot: usize, scenario: usize) {
        shard.lanes[slot].admitted = Some(scenario);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kkt_condensed::KktStrategy;
    use gridsim_batch::DevicePool;
    use gridsim_grid::cases;
    use gridsim_grid::scenario::ScenarioSet;

    fn condensed() -> IpmOptions {
        IpmOptions {
            kkt_strategy: KktStrategy::Condensed,
            ..Default::default()
        }
    }

    #[test]
    fn fleet_solves_a_load_ramp_and_pays_one_analysis_per_lane() {
        let nets = ScenarioSet::load_ramp(cases::case9(), 4, 0.98, 1.02)
            .networks()
            .unwrap();
        let engine = Engine::with_pool(DevicePool::parallel(2)).with_lanes(1);
        let fleet = IpmFleetSolver::with_engine(condensed(), engine).solve(&nets);
        assert_eq!(fleet.results.len(), 4);
        assert!(fleet.all_optimal(), "a scenario failed to converge");
        assert_eq!(fleet.lanes, 2);
        // 2 lanes for 4 scenarios: two symbolic analyses, not four.
        assert_eq!(fleet.symbolic_analyses(), fleet.lanes);
        assert!(fleet.factorizations() > fleet.symbolic_analyses());
        // Input-order results: the ramp's objectives rise with load.
        let objs: Vec<f64> = fleet.results.iter().map(|r| r.report.objective).collect();
        assert!(objs.windows(2).all(|w| w[0] < w[1]), "objectives {objs:?}");
        // Streaming admission: 2 rounds through 2 lanes.
        assert_eq!(fleet.ticks, 2);
        // A benign load ramp never trips the globalization safeguards; the
        // aggregated counters exist to flag scenario sets that do.
        assert_eq!(fleet.restorations(), 0);
        assert_eq!(
            fleet.filter_rejections(),
            fleet
                .results
                .iter()
                .map(|r| r.report.filter_rejections)
                .sum::<usize>()
        );
    }

    #[test]
    fn warm_start_carry_speeds_up_the_second_admission() {
        let nets = ScenarioSet::load_ramp(cases::case9(), 2, 1.0, 1.005)
            .networks()
            .unwrap();
        let engine = Engine::with_pool(DevicePool::parallel(1)).with_lanes(1);
        let fleet = IpmFleetSolver::with_engine(condensed(), engine).solve(&nets);
        assert!(fleet.all_optimal());
        // The second scenario rides the first one's primal/dual point and
        // the lane's frozen pattern: no new analysis, no more iterations
        // than the cold start.
        assert_eq!(fleet.results[1].report.symbolic_analyses, 0);
        assert!(
            fleet.results[1].report.iterations <= fleet.results[0].report.iterations,
            "warm {} vs cold {}",
            fleet.results[1].report.iterations,
            fleet.results[0].report.iterations
        );
    }

    #[test]
    fn full_strategy_fleet_still_solves() {
        let nets = ScenarioSet::load_ramp(cases::case9(), 2, 0.99, 1.01)
            .networks()
            .unwrap();
        let fleet = IpmFleetSolver::with_engine(
            IpmOptions::default(),
            Engine::with_pool(DevicePool::parallel(1)),
        )
        .solve(&nets);
        assert!(fleet.all_optimal());
        // The full path pays a symbolic analysis per factorization.
        assert_eq!(fleet.symbolic_analyses(), fleet.factorizations());
    }

    #[test]
    #[should_panic(expected = "at least one scenario")]
    fn empty_fleet_is_rejected() {
        let _ = IpmFleetSolver::new(condensed()).solve(&[]);
    }
}
