//! The primal–dual interior-point iteration.
//!
//! Inequalities are slacked (`c_I(x) + s = 0`, `s ≥ 0`), bounds are handled
//! with logarithmic barriers, and each Newton step solves the augmented KKT
//! system assembled by [`crate::kkt`] with the sparse LDLᵀ of
//! [`gridsim_sparse`]. Inertia is corrected by increasing primal
//! regularization (and, on singular pivots, barrier-scaled dual
//! regularization), and steps respect the fraction-to-boundary rule.
//!
//! Globalization follows Wächter & Biegler's filter line search (the IPOPT
//! scheme): a trial step must either make an f-type Armijo decrease of the
//! barrier objective φ, or land outside the (θ, φ) filter of dominated
//! infeasibility/objective pairs. A rejected full step first gets
//! second-order correction steps (extra triangular solves on the same
//! factorization against the corrected constraint residual); if the line
//! search still finds no acceptable step length, a watchdog takes a bounded
//! run of full steps on trust, and when that trust runs out the iterate is
//! restored and a feasibility-restoration phase (projected gradient on the
//! squared constraint violation) re-centers the solve. The barrier parameter
//! decreases monotonically once the barrier subproblem is solved to a
//! multiple of μ (Fiacco–McCormick), as in Ipopt's monotone mode, and the
//! filter resets on every μ decrease.

use crate::kkt::{assemble_kkt, KktDims};
use crate::kkt_condensed::{KktCache, KktStrategy};
use crate::nlp::Nlp;
use crate::report::{IpmStatus, IterationRecord, SolveReport};
use gridsim_batch::Device;
use gridsim_sparse::{Coo, LdlFactor, LdlOptions, Ordering};
use std::time::Instant;

// Wächter–Biegler filter line-search constants (their Table 1 defaults).
const GAMMA_THETA: f64 = 1e-5;
const GAMMA_PHI: f64 = 1e-5;
const GAMMA_ALPHA: f64 = 0.05;
const S_THETA: f64 = 1.1;
const S_PHI: f64 = 2.3;
const DELTA_SWITCH: f64 = 1.0;
const ETA_PHI: f64 = 1e-4;
const KAPPA_SOC: f64 = 0.99;
/// Gradient-based objective scaling cap: `s_f = min(1, 100 / ‖∇f(x0)‖∞)`.
const GRAD_SCALE_MAX: f64 = 100.0;
const KAPPA_SIGMA: f64 = 1e10;
/// Hard cap on step halvings per line search (α_min can be 0 when θ = 0).
const MAX_HALVINGS: usize = 60;
/// Positivity floor for warm-started bound multipliers.
const Z_WARM_MIN: f64 = 1e-10;

/// Options for the interior-point solver.
#[derive(Debug, Clone)]
pub struct IpmOptions {
    /// Convergence tolerance on the unscaled KKT error.
    pub tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Initial barrier parameter.
    pub mu_init: f64,
    /// Fraction-to-boundary floor (`τ = max(tau_min, 1 − μ)`).
    pub tau_min: f64,
    /// Relative push of the initial point away from its bounds.
    pub bound_push: f64,
    /// Maximum number of inertia-correction refactorizations per step.
    pub max_refactorizations: usize,
    /// Maximum second-order correction steps after a rejected full step.
    pub max_soc: usize,
    /// Non-monotone full steps the watchdog may take on trust after the
    /// filter line search fails, before restoring the saved iterate and
    /// entering feasibility restoration. `0` disables the watchdog.
    pub watchdog_budget: usize,
    /// Iteration budget of the feasibility-restoration phase.
    pub max_restoration_iters: usize,
    /// Dual regularization added to the constraint block of the KKT system.
    pub delta_c: f64,
    /// Optional primal warm start overriding [`Nlp::initial_point`].
    pub initial_point: Option<Vec<f64>>,
    /// Optional warm start for the constraint multipliers `[λ_E; λ_I]`.
    pub initial_multipliers: Option<Vec<f64>>,
    /// Optional warm start for the bound multipliers `(z_L, z_U)` over the
    /// slacked vector `v = [x; s]` (dimension `nx + m_ineq` each, as
    /// returned in [`SolveReport::zl`](crate::SolveReport::zl)/
    /// [`zu`](crate::SolveReport::zu)). Without it the solver
    /// re-initializes `z = μ_init / slack` — which erases the active-set
    /// information a near-optimal [`initial_point`](IpmOptions::initial_point)
    /// carries and forces the full cold μ descent. With it the multipliers
    /// are carried (clamped positive) and the initial barrier parameter
    /// starts from their average complementarity instead of
    /// [`mu_init`](IpmOptions::mu_init), so a start near an optimum resumes
    /// the barrier trajectory where the donor solve left off.
    pub initial_bound_multipliers: Option<(Vec<f64>, Vec<f64>)>,
    /// Which KKT path each Newton step uses: the full augmented system
    /// (fresh symbolic analysis per factorization) or the condensed-space
    /// system with frozen-pattern numeric refactorization on the batch
    /// device.
    pub kkt_strategy: KktStrategy,
}

impl Default for IpmOptions {
    fn default() -> Self {
        IpmOptions {
            tol: 1e-6,
            max_iter: 300,
            mu_init: 0.1,
            tau_min: 0.99,
            bound_push: 1e-2,
            max_refactorizations: 40,
            max_soc: 4,
            watchdog_budget: 3,
            max_restoration_iters: 100,
            delta_c: 1e-8,
            initial_point: None,
            initial_multipliers: None,
            initial_bound_multipliers: None,
            kkt_strategy: KktStrategy::default(),
        }
    }
}

/// The (θ, φ) filter of the line search: the envelope of
/// infeasibility/barrier-objective pairs no trial point may dominate.
/// Entries are stored with the Wächter–Biegler margins already applied, so
/// acceptability is a plain componentwise comparison.
#[derive(Debug, Clone)]
struct Filter {
    /// `(θ̄, φ̄)` pairs; a trial is rejected when `θ ≥ θ̄ && φ ≥ φ̄` for any
    /// entry.
    entries: Vec<(f64, f64)>,
    /// Absolute infeasibility cap, kept as the permanent `(θ_max, −∞)` entry.
    theta_max: f64,
}

impl Filter {
    fn new(theta_max: f64) -> Filter {
        Filter {
            entries: vec![(theta_max, f64::NEG_INFINITY)],
            theta_max,
        }
    }

    /// True when `(θ, φ)` is acceptable to every filter entry.
    fn acceptable(&self, theta: f64, phi: f64) -> bool {
        self.entries.iter().all(|&(t, p)| theta < t || phi < p)
    }

    /// Augment with the current iterate (margins applied here), pruning
    /// entries the new one dominates.
    fn add(&mut self, theta: f64, phi: f64) {
        let t = (1.0 - GAMMA_THETA) * theta;
        let p = phi - GAMMA_PHI * theta;
        self.entries.retain(|&(te, pe)| te < t || pe < p);
        self.entries.push((t, p));
    }

    /// Drop all history (on barrier-parameter decreases: φ changes meaning).
    fn reset(&mut self) {
        self.entries.clear();
        self.entries.push((self.theta_max, f64::NEG_INFINITY));
    }
}

/// A trial point's line-search measures.
struct TrialPoint {
    /// ℓ1 constraint violation `‖c_E‖₁ + ‖c_I + s‖₁`.
    theta: f64,
    /// Barrier objective `s_f·f − μ Σ ln(slack)`.
    phi: f64,
    /// Stacked constraint values `[c_E; c_I + s]` (reused by the SOC
    /// residual recursion).
    c: Vec<f64>,
}

/// Evaluate a trial point for the filter line search. Returns `None` when
/// the trial violates a bound (non-positive slack) or produces a non-finite
/// measure — such trials are rejected outright rather than clamped into the
/// barrier (the pre-filter solver clamped slacks at `1e-300`, which let
/// boundary-violating steps masquerade as enormous merit improvements).
#[allow(clippy::too_many_arguments)]
fn eval_trial<N: Nlp>(
    nlp: &N,
    v_t: &[f64],
    lower: &[f64],
    upper: &[f64],
    nx: usize,
    m_eq: usize,
    m_ineq: usize,
    mu: f64,
    s_f: f64,
) -> Option<TrialPoint> {
    let nv = v_t.len();
    let mut barrier = 0.0;
    for i in 0..nv {
        if lower[i].is_finite() {
            let d = v_t[i] - lower[i];
            if d <= 0.0 {
                return None;
            }
            barrier -= mu * d.ln();
        }
        if upper[i].is_finite() {
            let d = upper[i] - v_t[i];
            if d <= 0.0 {
                return None;
            }
            barrier -= mu * d.ln();
        }
    }
    let x_t = &v_t[..nx];
    let phi = s_f * nlp.objective(x_t) + barrier;
    if !phi.is_finite() {
        return None;
    }
    let mut ce_t = vec![0.0; m_eq];
    let mut ci_t = vec![0.0; m_ineq];
    nlp.eq_constraints(x_t, &mut ce_t);
    nlp.ineq_constraints(x_t, &mut ci_t);
    let mut c = Vec::with_capacity(m_eq + m_ineq);
    let mut theta = 0.0;
    for &cj in &ce_t {
        c.push(cj);
        theta += cj.abs();
    }
    for k in 0..m_ineq {
        let r = ci_t[k] + v_t[nx + k];
        c.push(r);
        theta += r.abs();
    }
    if !theta.is_finite() {
        return None;
    }
    Some(TrialPoint { theta, phi, c })
}

/// Largest primal step keeping `v + α dv` a fraction τ inside its bounds.
fn max_primal_step(v: &[f64], dv: &[f64], lower: &[f64], upper: &[f64], tau: f64) -> f64 {
    let mut alpha: f64 = 1.0;
    for i in 0..v.len() {
        if dv[i] < 0.0 && lower[i].is_finite() {
            alpha = alpha.min(tau * (v[i] - lower[i]) / (-dv[i]));
        }
        if dv[i] > 0.0 && upper[i].is_finite() {
            alpha = alpha.min(tau * (upper[i] - v[i]) / dv[i]);
        }
    }
    alpha
}

/// Largest dual step keeping the bound multipliers a fraction τ positive.
fn max_dual_step(zl: &[f64], zu: &[f64], dzl: &[f64], dzu: &[f64], tau: f64) -> f64 {
    let mut alpha: f64 = 1.0;
    for i in 0..zl.len() {
        if dzl[i] < 0.0 && zl[i] > 0.0 {
            alpha = alpha.min(tau * zl[i] / (-dzl[i]));
        }
        if dzu[i] < 0.0 && zu[i] > 0.0 {
            alpha = alpha.min(tau * zu[i] / (-dzu[i]));
        }
    }
    alpha
}

/// Bound-multiplier Newton steps recovered from a primal direction.
fn bound_dual_steps(
    v: &[f64],
    dv: &[f64],
    zl: &[f64],
    zu: &[f64],
    lower: &[f64],
    upper: &[f64],
    mu: f64,
) -> (Vec<f64>, Vec<f64>) {
    let nv = v.len();
    let mut dzl = vec![0.0; nv];
    let mut dzu = vec![0.0; nv];
    for i in 0..nv {
        if lower[i].is_finite() {
            let d = v[i] - lower[i];
            dzl[i] = -((d * zl[i] - mu) / d) - zl[i] / d * dv[i];
        }
        if upper[i].is_finite() {
            let d = upper[i] - v[i];
            dzu[i] = -((d * zu[i] - mu) / d) + zu[i] / d * dv[i];
        }
    }
    (dzl, dzu)
}

/// Last-resort feasibility restoration: projected-gradient descent on
/// `½‖c_E‖² + ½‖c_I + s‖²` over the box, run until the ℓ1 violation drops
/// below `target` (or the budget/stationarity ends it). Returns whether the
/// target was reached; `v` holds the final (strictly interior) point either
/// way.
#[allow(clippy::too_many_arguments)]
fn restore_feasibility<N: Nlp>(
    nlp: &N,
    v: &mut [f64],
    lower: &[f64],
    upper: &[f64],
    nx: usize,
    m_eq: usize,
    m_ineq: usize,
    max_iters: usize,
    target: f64,
) -> bool {
    let nv = v.len();
    let clamp_interior = |vi: f64, l: f64, u: f64| -> f64 {
        let lo = if l.is_finite() {
            l + 1e-9 * (1.0 + l.abs())
        } else {
            f64::NEG_INFINITY
        };
        let hi = if u.is_finite() {
            u - 1e-9 * (1.0 + u.abs())
        } else {
            f64::INFINITY
        };
        if lo > hi {
            0.5 * (l + u)
        } else {
            vi.clamp(lo, hi)
        }
    };
    let mut ce = vec![0.0; m_eq];
    let mut ci = vec![0.0; m_ineq];
    let residual = |x: &[f64], s: &[f64], ce: &mut [f64], ci: &mut [f64]| -> (f64, f64) {
        nlp.eq_constraints(x, ce);
        nlp.ineq_constraints(x, ci);
        let mut sq = 0.0;
        let mut l1 = 0.0;
        for c in ce.iter() {
            sq += 0.5 * c * c;
            l1 += c.abs();
        }
        for (k, c) in ci.iter().enumerate() {
            let w = c + s[k];
            sq += 0.5 * w * w;
            l1 += w.abs();
        }
        (sq, l1)
    };
    let (mut r, mut theta) = residual(&v[..nx], &v[nx..], &mut ce, &mut ci);
    for _ in 0..max_iters {
        if theta <= target {
            return true;
        }
        // Gradient of the squared violation over v = [x; s].
        let mut grad = vec![0.0; nv];
        let jac_eq = nlp.eq_jacobian(&v[..nx]);
        let jac_ineq = nlp.ineq_jacobian(&v[..nx]);
        for k in 0..jac_eq.nnz() {
            grad[jac_eq.cols[k]] += jac_eq.vals[k] * ce[jac_eq.rows[k]];
        }
        for k in 0..jac_ineq.nnz() {
            let row = jac_ineq.rows[k];
            grad[jac_ineq.cols[k]] += jac_ineq.vals[k] * (ci[row] + v[nx + row]);
        }
        for k in 0..m_ineq {
            grad[nx + k] = ci[k] + v[nx + k];
        }
        let gnorm = grad.iter().map(|g| g.abs()).fold(0.0, f64::max);
        if gnorm < 1e-14 || !gnorm.is_finite() {
            // Stationary point of the violation (or numerical junk): the
            // restoration cannot make further progress.
            return theta <= target;
        }
        let mut t = 1.0 / gnorm.max(1.0);
        let mut moved = false;
        for _ in 0..40 {
            let v_t: Vec<f64> = (0..nv)
                .map(|i| clamp_interior(v[i] - t * grad[i], lower[i], upper[i]))
                .collect();
            let (r_t, theta_t) = residual(&v_t[..nx], &v_t[nx..], &mut ce, &mut ci);
            if r_t < r {
                v.copy_from_slice(&v_t);
                r = r_t;
                theta = theta_t;
                moved = true;
                break;
            }
            t *= 0.5;
        }
        if !moved {
            // Re-evaluate the violation at the unmoved point (the trial
            // loop overwrote the scratch buffers).
            let (_, theta_now) = residual(&v[..nx], &v[nx..], &mut ce, &mut ci);
            return theta_now <= target;
        }
    }
    theta <= target
}

/// A saved iterate the watchdog can fall back to.
struct SavedIterate {
    v: Vec<f64>,
    lambda: Vec<f64>,
    zl: Vec<f64>,
    zu: Vec<f64>,
    /// Forced steps left before the trust expires.
    left: usize,
}

/// A successful factorization before its (deferred) triangular solve: the
/// full strategy carries the factor so inertia-rejected attempts never pay
/// the solve, and the filter line search re-solves it for second-order
/// corrections.
enum Factorized {
    Full(LdlFactor),
    Condensed(crate::kkt_condensed::CondensedFactor),
}

impl Factorized {
    fn solve(&self, jac_ineq: &Coo, rhs: &[f64]) -> Vec<f64> {
        match self {
            Factorized::Full(fac) => fac.solve(rhs),
            Factorized::Condensed(cond) => cond.solve(jac_ineq, rhs),
        }
    }
}

/// The step the line search (or the watchdog) decided to take.
struct AcceptedStep {
    v_new: Vec<f64>,
    /// Direction actually taken — the Newton step or an SOC correction.
    dv: Vec<f64>,
    dlambda: Vec<f64>,
    alpha: f64,
    /// h-type steps augment the filter with the departed iterate.
    augment: bool,
}

/// The interior-point solver.
#[derive(Debug, Clone, Default)]
pub struct IpmSolver {
    /// Options used by [`IpmSolver::solve`].
    pub options: IpmOptions,
    /// Batch device the condensed strategy refactorizes on (the per-row
    /// column updates of the numeric LDLᵀ fan out as thread blocks).
    pub device: Device,
}

impl IpmSolver {
    /// Create a solver with the given options.
    pub fn new(options: IpmOptions) -> Self {
        IpmSolver {
            options,
            device: Device::default(),
        }
    }

    /// Replace the batch device used by the condensed KKT strategy.
    pub fn with_device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// Solve the NLP with a fresh KKT cache.
    pub fn solve<N: Nlp>(&self, nlp: &N) -> SolveReport {
        let mut cache = KktCache::new();
        self.solve_with_cache(nlp, &mut cache)
    }

    /// Solve the NLP, reusing (and updating) a caller-owned [`KktCache`].
    ///
    /// Under [`KktStrategy::Condensed`], consecutive solves of structurally
    /// identical NLPs — the rolling-horizon tracking workload, where each
    /// period re-solves the same network at drifted loads — share one
    /// symbolic analysis across the whole trajectory. The full strategy
    /// ignores the cache.
    pub fn solve_with_cache<N: Nlp>(&self, nlp: &N, cache: &mut KktCache) -> SolveReport {
        let start_time = Instant::now();
        let opts = &self.options;
        let symbolic_before = cache.symbolic_analyses();

        let nx = nlp.num_vars();
        let m_eq = nlp.num_eq();
        let m_ineq = nlp.num_ineq();
        let dims = KktDims {
            nx,
            ns: m_ineq,
            m_eq,
            m_ineq,
        };
        let nv = dims.nv();
        let mc = dims.mc();

        // Bounds of the slacked variable vector v = [x; s].
        let (lx, ux) = nlp.bounds();
        let mut lower = lx.clone();
        let mut upper = ux.clone();
        lower.extend(std::iter::repeat_n(0.0, m_ineq));
        upper.extend(std::iter::repeat_n(f64::INFINITY, m_ineq));

        // --- initial point ---
        let x_start = opts
            .initial_point
            .clone()
            .unwrap_or_else(|| nlp.initial_point());
        assert_eq!(x_start.len(), nx, "initial point has wrong dimension");
        let mut v = vec![0.0; nv];
        v[..nx].copy_from_slice(&x_start);
        // Slacks from the inequality values.
        let mut ci = vec![0.0; m_ineq];
        nlp.ineq_constraints(&x_start, &mut ci);
        for k in 0..m_ineq {
            v[nx + k] = (-ci[k]).max(opts.bound_push);
        }
        push_into_interior(&mut v, &lower, &upper, opts.bound_push);

        // --- gradient-based objective scaling (Ipopt §3.8) ---
        // Internally the solver minimizes s_f·f; multipliers scale with s_f
        // and are unscaled again in the report.
        let mut grad_f = vec![0.0; nx];
        nlp.objective_grad(&v[..nx], &mut grad_f);
        let g0 = inf_norm(&grad_f);
        let s_f = if g0 > GRAD_SCALE_MAX {
            GRAD_SCALE_MAX / g0
        } else {
            1.0
        };

        let mut lambda = vec![0.0; mc];
        if let Some(l0) = &opts.initial_multipliers {
            if l0.len() == mc {
                for (l, &l0) in lambda.iter_mut().zip(l0) {
                    *l = s_f * l0;
                }
            }
        }
        let mut mu = opts.mu_init;
        let mut zl = vec![0.0; nv];
        let mut zu = vec![0.0; nv];
        let warm_z = opts
            .initial_bound_multipliers
            .as_ref()
            .filter(|(wl, wu)| wl.len() == nv && wu.len() == nv);
        if let Some((wl, wu)) = warm_z {
            // Carry the donor's bound multipliers (internally scaled like λ,
            // clamped positive) and resume the barrier trajectory at their
            // average complementarity: a near-optimal start keeps its
            // active-set information and skips the cold μ descent.
            let mut comp_sum = 0.0;
            let mut comp_n = 0usize;
            for i in 0..nv {
                if lower[i].is_finite() {
                    zl[i] = (s_f * wl[i]).max(Z_WARM_MIN);
                    comp_sum += (v[i] - lower[i]) * zl[i];
                    comp_n += 1;
                }
                if upper[i].is_finite() {
                    zu[i] = (s_f * wu[i]).max(Z_WARM_MIN);
                    comp_sum += (upper[i] - v[i]) * zu[i];
                    comp_n += 1;
                }
            }
            if comp_n > 0 {
                mu = (comp_sum / comp_n as f64).clamp(opts.tol / 10.0, opts.mu_init);
            }
        } else {
            for i in 0..nv {
                if lower[i].is_finite() {
                    zl[i] = mu / (v[i] - lower[i]);
                }
                if upper[i].is_finite() {
                    zu[i] = mu / (upper[i] - v[i]);
                }
            }
        }

        // --- filter bounds from the initial violation ---
        let mut ce = vec![0.0; m_eq];
        nlp.eq_constraints(&v[..nx], &mut ce);
        nlp.ineq_constraints(&v[..nx], &mut ci);
        let theta0 = ce.iter().map(|c| c.abs()).sum::<f64>()
            + (0..m_ineq).map(|k| (ci[k] + v[nx + k]).abs()).sum::<f64>();
        let theta_min = 1e-4 * theta0.max(1.0);
        let theta_max = 1e4 * theta0.max(1.0);
        let mut filter = Filter::new(theta_max);

        // Probe the model pattern once with unit multipliers so the
        // condensed structure covers every coordinate the callbacks can emit
        // (they prune value-zero triplets, and cold starts carry λ = 0);
        // growth later in the solve still rebuilds the union as a fallback.
        if opts.kkt_strategy == KktStrategy::Condensed {
            let x0 = &v[..nx];
            let ones_eq = vec![1.0; m_eq];
            let ones_ineq = vec![1.0; m_ineq];
            let probe_hess = nlp.lagrangian_hessian(x0, s_f, &ones_eq, &ones_ineq);
            let probe_jac_eq = nlp.eq_jacobian(x0);
            let probe_jac_ineq = nlp.ineq_jacobian(x0);
            cache.ensure_structure(&dims, &probe_hess, &probe_jac_eq, &probe_jac_ineq);
        }

        // Workspace.
        let mut log = Vec::new();
        let mut factorizations = 0usize;
        let mut symbolic_full = 0usize;
        let mut ordering: Option<Ordering> = None;
        let mut delta_w_last = 0.0f64;
        let mut status = IpmStatus::MaxIterations;
        let mut iterations = 0usize;
        let mut kkt_error = f64::INFINITY;
        let mut primal_inf = f64::INFINITY;
        let mut watchdog: Option<SavedIterate> = None;
        let mut filter_rejections = 0usize;
        let mut soc_steps = 0usize;
        let mut watchdog_steps = 0usize;
        let mut restorations = 0usize;

        'outer: for iter in 0..opts.max_iter {
            iterations = iter;
            let x = &v[..nx];

            // --- evaluations ---
            let f = nlp.objective(x);
            nlp.objective_grad(x, &mut grad_f);
            for g in grad_f.iter_mut() {
                *g *= s_f;
            }
            nlp.eq_constraints(x, &mut ce);
            nlp.ineq_constraints(x, &mut ci);
            let jac_eq = nlp.eq_jacobian(x);
            let jac_ineq = nlp.ineq_jacobian(x);

            // --- residuals ---
            // Dual residual over v = [x; s].
            let mut r_d = vec![0.0; nv];
            r_d[..nx].copy_from_slice(&grad_f);
            // + J_E^T lam_eq + J_I^T lam_ineq on the x block.
            for k in 0..jac_eq.nnz() {
                r_d[jac_eq.cols[k]] += jac_eq.vals[k] * lambda[jac_eq.rows[k]];
            }
            for k in 0..jac_ineq.nnz() {
                r_d[jac_ineq.cols[k]] += jac_ineq.vals[k] * lambda[m_eq + jac_ineq.rows[k]];
            }
            // Slack block: lam_ineq - zl_s (+ zu_s = 0).
            for k in 0..m_ineq {
                r_d[nx + k] += lambda[m_eq + k];
            }
            for i in 0..nv {
                r_d[i] += zu[i] - zl[i];
            }
            // Constraint residual.
            let mut r_c = vec![0.0; mc];
            r_c[..m_eq].copy_from_slice(&ce);
            for k in 0..m_ineq {
                r_c[m_eq + k] = ci[k] + v[nx + k];
            }
            // Complementarity.
            let comp_error_mu = |mu: f64| -> f64 {
                let mut e: f64 = 0.0;
                for i in 0..nv {
                    if lower[i].is_finite() {
                        e = e.max(((v[i] - lower[i]) * zl[i] - mu).abs());
                    }
                    if upper[i].is_finite() {
                        e = e.max(((upper[i] - v[i]) * zu[i] - mu).abs());
                    }
                }
                e
            };

            let dual_inf = inf_norm(&r_d);
            primal_inf = inf_norm(&r_c);
            kkt_error = dual_inf.max(primal_inf).max(comp_error_mu(0.0));

            log.push(IterationRecord {
                iter,
                objective: f,
                primal_infeasibility: primal_inf,
                dual_infeasibility: dual_inf,
                mu,
                alpha_primal: 0.0,
                delta_w: delta_w_last,
            });

            if kkt_error <= opts.tol {
                status = IpmStatus::Optimal;
                break 'outer;
            }

            // --- barrier update (monotone) ---
            let kappa_eps = 10.0;
            let mu_before = mu;
            while dual_inf.max(primal_inf).max(comp_error_mu(mu)) <= kappa_eps * mu
                && mu > opts.tol / 10.0
            {
                mu = (opts.tol / 10.0).max((0.2 * mu).min(mu.powf(1.5)));
            }
            if mu < mu_before {
                // φ changes meaning with μ: stale pairs must not block the
                // new barrier subproblem.
                filter.reset();
            }

            // --- line-search measures at the current iterate ---
            let theta_k: f64 = r_c.iter().map(|c| c.abs()).sum();
            let mut phi_k = s_f * f;
            for i in 0..nv {
                if lower[i].is_finite() {
                    phi_k -= mu * (v[i] - lower[i]).ln();
                }
                if upper[i].is_finite() {
                    phi_k -= mu * (upper[i] - v[i]).ln();
                }
            }

            // --- Newton system ---
            let hess = nlp.lagrangian_hessian(x, s_f, &lambda[..m_eq], &lambda[m_eq..]);
            let mut sigma = vec![0.0; nv];
            for i in 0..nv {
                if lower[i].is_finite() {
                    sigma[i] += zl[i] / (v[i] - lower[i]);
                }
                if upper[i].is_finite() {
                    sigma[i] += zu[i] / (upper[i] - v[i]);
                }
            }
            // rhs = [-r_d - (V-L)^{-1} comp_l + (U-V)^{-1} comp_u; -r_c]
            let mut rhs = vec![0.0; dims.dim()];
            for i in 0..nv {
                let mut r = -r_d[i];
                if lower[i].is_finite() {
                    let d = v[i] - lower[i];
                    r -= (d * zl[i] - mu) / d;
                }
                if upper[i].is_finite() {
                    let d = upper[i] - v[i];
                    r += (d * zu[i] - mu) / d;
                }
                rhs[i] = r;
            }
            for j in 0..mc {
                rhs[nv + j] = -r_c[j];
            }

            // Factorize with inertia correction: wrong inertia escalates the
            // primal regularization δ_w; singular pivots additionally raise
            // the dual regularization with the barrier (δ_c ~ μ^¼, Ipopt's
            // κ_c rule) so near-rank-deficient constraint blocks stop
            // amplifying the multiplier step.
            let mut delta_w = 0.0f64;
            let mut delta_c = opts.delta_c;
            let mut attempt = 0usize;
            let factorized = loop {
                factorizations += 1;
                // `Some((factorized, inertia_ok, singular))` on a successful
                // factorization, `None` on breakdown; both strategies share
                // the retry loop.
                let attempt_result = match opts.kkt_strategy {
                    KktStrategy::Full => {
                        let kkt = assemble_kkt(
                            &dims, &hess, &sigma, &jac_eq, &jac_ineq, delta_w, delta_c,
                        );
                        if ordering.is_none() {
                            ordering = Some(Ordering::rcm(&kkt));
                        }
                        let ldl_opts = LdlOptions {
                            expected_signs: dims.expected_signs(),
                            pivot_tol: 1e-13,
                            pivot_reg: 1e-9,
                        };
                        symbolic_full += 1;
                        LdlFactor::factorize_with(
                            &kkt,
                            ordering.clone().expect("ordering computed above"),
                            &ldl_opts,
                        )
                        .ok()
                        .map(|fac| {
                            let (pos, neg, zero) = fac.inertia();
                            let inertia_ok =
                                pos == nv && neg == mc && zero == 0 && fac.num_regularized == 0;
                            let singular = zero > 0 || fac.num_regularized > 0;
                            (Factorized::Full(fac), inertia_ok, singular)
                        })
                    }
                    KktStrategy::Condensed => cache
                        .factorize_condensed(
                            &self.device,
                            &dims,
                            &hess,
                            &sigma,
                            &jac_eq,
                            &jac_ineq,
                            delta_w,
                            delta_c,
                            1e-13,
                            1e-9,
                        )
                        .ok()
                        .map(|cond| {
                            let inertia_ok =
                                cond.inertia == (nx, m_eq, 0) && cond.num_regularized == 0;
                            let singular = cond.inertia.2 > 0 || cond.num_regularized > 0;
                            (Factorized::Condensed(cond), inertia_ok, singular)
                        }),
                };
                match attempt_result {
                    Some((factorized, inertia_ok, singular)) => {
                        if inertia_ok || attempt >= opts.max_refactorizations {
                            break Some(factorized);
                        }
                        if singular {
                            delta_c = delta_c.max(1e-8 * mu.powf(0.25));
                        }
                    }
                    None => {
                        if attempt >= opts.max_refactorizations {
                            break None;
                        }
                        delta_c = delta_c.max(1e-8 * mu.powf(0.25));
                    }
                }
                attempt += 1;
                delta_w = if delta_w == 0.0 {
                    if delta_w_last == 0.0 {
                        1e-4
                    } else {
                        (delta_w_last / 3.0).max(1e-10)
                    }
                } else {
                    delta_w * 10.0
                };
                if delta_w > 1e12 {
                    break None;
                }
            };
            let factorized = match factorized {
                Some(fac) => fac,
                None => {
                    status = IpmStatus::NumericalError;
                    break 'outer;
                }
            };
            delta_w_last = delta_w;
            let step = factorized.solve(&jac_ineq, &rhs);

            let dv = &step[..nv];
            let dlambda = &step[nv..];

            // --- fraction to boundary ---
            let tau = opts.tau_min.max(1.0 - mu);
            let alpha_pri_max = max_primal_step(&v, dv, &lower, &upper, tau);

            // Directional derivative of φ along dv.
            let mut m_slope = 0.0;
            for i in 0..nx {
                m_slope += grad_f[i] * dv[i];
            }
            for i in 0..nv {
                if lower[i].is_finite() {
                    m_slope -= mu * dv[i] / (v[i] - lower[i]);
                }
                if upper[i].is_finite() {
                    m_slope += mu * dv[i] / (upper[i] - v[i]);
                }
            }

            // Minimum step length the filter search will try before handing
            // over to the watchdog/restoration (Wächter–Biegler eq. 23).
            let alpha_min = GAMMA_ALPHA
                * if m_slope < 0.0 && theta_k <= theta_min {
                    GAMMA_THETA
                        .min(GAMMA_PHI * theta_k / (-m_slope))
                        .min(DELTA_SWITCH * theta_k.powf(S_THETA) / (-m_slope).powf(S_PHI))
                } else if m_slope < 0.0 {
                    GAMMA_THETA.min(GAMMA_PHI * theta_k / (-m_slope))
                } else {
                    GAMMA_THETA
                };

            // --- filter line search with second-order corrections ---
            let check_acceptance = |alpha: f64, tp: &TrialPoint| -> Option<bool> {
                // `Some(augment_filter)` when acceptable, `None` otherwise.
                let ftype = theta_k <= theta_min
                    && m_slope < 0.0
                    && alpha * (-m_slope).powf(S_PHI) > DELTA_SWITCH * theta_k.powf(S_THETA);
                let armijo = tp.phi <= phi_k + ETA_PHI * alpha * m_slope;
                if !filter.acceptable(tp.theta, tp.phi) {
                    return None;
                }
                let ok = if ftype {
                    armijo
                } else {
                    tp.theta <= (1.0 - GAMMA_THETA) * theta_k
                        || tp.phi <= phi_k - GAMMA_PHI * theta_k
                };
                if ok {
                    Some(!(ftype && armijo))
                } else {
                    None
                }
            };

            let mut accepted: Option<AcceptedStep> = None;
            let mut alpha = alpha_pri_max;
            let mut first_trial = true;
            for _halvings in 0..=MAX_HALVINGS {
                let mut v_t = v.clone();
                for i in 0..nv {
                    v_t[i] = v[i] + alpha * dv[i];
                }
                let trial = eval_trial(nlp, &v_t, &lower, &upper, nx, m_eq, m_ineq, mu, s_f);
                if let Some(tp) = &trial {
                    if let Some(augment) = check_acceptance(alpha, tp) {
                        accepted = Some(AcceptedStep {
                            v_new: v_t,
                            dv: dv.to_vec(),
                            dlambda: dlambda.to_vec(),
                            alpha,
                            augment,
                        });
                        break;
                    }
                }
                filter_rejections += 1;

                // Second-order corrections: only off the maximal trial, and
                // only when its infeasibility did not improve (an α-halving
                // would fix a φ overshoot but not a constraint overshoot).
                if first_trial && trial.as_ref().is_some_and(|tp| tp.theta >= theta_k) {
                    let tp = trial.as_ref().expect("checked is_some above");
                    let mut c_soc = vec![0.0; mc];
                    for j in 0..mc {
                        c_soc[j] = alpha * r_c[j] + tp.c[j];
                    }
                    let mut theta_soc_prev = tp.theta;
                    for _ in 0..opts.max_soc {
                        soc_steps += 1;
                        let mut rhs_soc = rhs.clone();
                        for j in 0..mc {
                            rhs_soc[nv + j] = -c_soc[j];
                        }
                        let step_soc = factorized.solve(&jac_ineq, &rhs_soc);
                        let alpha_soc = max_primal_step(&v, &step_soc[..nv], &lower, &upper, tau);
                        let mut v_soc = v.clone();
                        for i in 0..nv {
                            v_soc[i] = v[i] + alpha_soc * step_soc[i];
                        }
                        let Some(tps) =
                            eval_trial(nlp, &v_soc, &lower, &upper, nx, m_eq, m_ineq, mu, s_f)
                        else {
                            break;
                        };
                        if let Some(augment) = check_acceptance(alpha_soc, &tps) {
                            accepted = Some(AcceptedStep {
                                v_new: v_soc,
                                dlambda: step_soc[nv..].to_vec(),
                                dv: step_soc[..nv].to_vec(),
                                alpha: alpha_soc,
                                augment,
                            });
                            break;
                        }
                        filter_rejections += 1;
                        if tps.theta > KAPPA_SOC * theta_soc_prev {
                            break;
                        }
                        theta_soc_prev = tps.theta;
                        for (cs, &tc) in c_soc.iter_mut().zip(&tps.c) {
                            *cs = alpha_soc * *cs + tc;
                        }
                    }
                    if accepted.is_some() {
                        break;
                    }
                }
                first_trial = false;
                alpha *= 0.5;
                if alpha < alpha_min {
                    break;
                }
            }

            let taken = match accepted {
                Some(acc) => {
                    // An acceptable step vindicates any pending watchdog
                    // trust run.
                    watchdog = None;
                    acc
                }
                None => {
                    // --- watchdog: a bounded run of full steps on trust ---
                    let force = match &mut watchdog {
                        None if opts.watchdog_budget > 0 => {
                            watchdog = Some(SavedIterate {
                                v: v.clone(),
                                lambda: lambda.clone(),
                                zl: zl.clone(),
                                zu: zu.clone(),
                                left: opts.watchdog_budget,
                            });
                            true
                        }
                        Some(w) if w.left > 0 => {
                            w.left -= 1;
                            true
                        }
                        _ => false,
                    };
                    if force {
                        watchdog_steps += 1;
                        let mut v_new = v.clone();
                        for i in 0..nv {
                            v_new[i] = v[i] + alpha_pri_max * dv[i];
                        }
                        AcceptedStep {
                            v_new,
                            dv: dv.to_vec(),
                            dlambda: dlambda.to_vec(),
                            alpha: alpha_pri_max,
                            augment: false,
                        }
                    } else {
                        // --- restore + feasibility restoration ---
                        if let Some(w) = watchdog.take() {
                            v = w.v;
                            lambda = w.lambda;
                            zl = w.zl;
                            zu = w.zu;
                        }
                        let entry = eval_trial(nlp, &v, &lower, &upper, nx, m_eq, m_ineq, mu, s_f);
                        let Some(entry) = entry else {
                            status = IpmStatus::NumericalError;
                            break 'outer;
                        };
                        if entry.theta <= theta_min {
                            // Already (nearly) feasible: restoration has
                            // nothing to restore — the step computation
                            // itself is stuck.
                            status = IpmStatus::NumericalError;
                            break 'outer;
                        }
                        restorations += 1;
                        // Block re-entry at this pair before leaving it.
                        filter.add(entry.theta, entry.phi);
                        let target = (1e-2 * entry.theta).max(0.1 * theta_min);
                        if !restore_feasibility(
                            nlp,
                            &mut v,
                            &lower,
                            &upper,
                            nx,
                            m_eq,
                            m_ineq,
                            opts.max_restoration_iters,
                            target,
                        ) {
                            status = IpmStatus::RestorationFailure;
                            break 'outer;
                        }
                        // Fresh multipliers at the restored point.
                        lambda.iter_mut().for_each(|l| *l = 0.0);
                        for i in 0..nv {
                            zl[i] = if lower[i].is_finite() {
                                mu / (v[i] - lower[i])
                            } else {
                                0.0
                            };
                            zu[i] = if upper[i].is_finite() {
                                mu / (upper[i] - v[i])
                            } else {
                                0.0
                            };
                        }
                        delta_w_last = 0.0;
                        continue 'outer;
                    }
                }
            };

            if taken.augment {
                filter.add(theta_k, phi_k);
            }

            // --- updates ---
            let (dzl, dzu) = bound_dual_steps(&v, &taken.dv, &zl, &zu, &lower, &upper, mu);
            let alpha_dual = max_dual_step(&zl, &zu, &dzl, &dzu, tau);
            v.copy_from_slice(&taken.v_new);
            for (lam, &dl) in lambda.iter_mut().zip(taken.dlambda.iter().take(mc)) {
                *lam += taken.alpha * dl;
            }
            for i in 0..nv {
                zl[i] += alpha_dual * dzl[i];
                zu[i] += alpha_dual * dzu[i];
            }
            // Keep bound multipliers within a large multiple of the primal
            // estimates (Ipopt's kappa_Sigma safeguard). Accepted iterates
            // are strictly interior — the fraction-to-boundary rule and the
            // trial rejection both guarantee positive slacks here.
            for i in 0..nv {
                if lower[i].is_finite() {
                    let p = mu / (v[i] - lower[i]);
                    zl[i] = zl[i].clamp(p / KAPPA_SIGMA, p * KAPPA_SIGMA);
                }
                if upper[i].is_finite() {
                    let p = mu / (upper[i] - v[i]);
                    zu[i] = zu[i].clamp(p / KAPPA_SIGMA, p * KAPPA_SIGMA);
                }
            }
            if let Some(last) = log.last_mut() {
                last.alpha_primal = taken.alpha;
                last.delta_w = delta_w;
            }
        }

        let x_final = v[..nx].to_vec();
        let objective = nlp.objective(&x_final);
        let symbolic_analyses = match opts.kkt_strategy {
            KktStrategy::Full => symbolic_full,
            KktStrategy::Condensed => cache.symbolic_analyses() - symbolic_before,
        };
        SolveReport {
            x: x_final,
            objective,
            lambda_eq: lambda[..m_eq].iter().map(|l| l / s_f).collect(),
            lambda_ineq: lambda[m_eq..].iter().map(|l| l / s_f).collect(),
            zl: zl.iter().map(|z| z / s_f).collect(),
            zu: zu.iter().map(|z| z / s_f).collect(),
            status,
            iterations,
            kkt_error,
            primal_infeasibility: primal_inf,
            solve_time: start_time.elapsed(),
            factorizations,
            symbolic_analyses,
            filter_rejections,
            soc_steps,
            watchdog_steps,
            restorations,
            log,
        }
    }
}

/// Push a point strictly inside its bounds (Ipopt's `bound_push`).
fn push_into_interior(v: &mut [f64], lower: &[f64], upper: &[f64], push: f64) {
    for i in 0..v.len() {
        let (l, u) = (lower[i], upper[i]);
        match (l.is_finite(), u.is_finite()) {
            (true, true) => {
                let width = u - l;
                let margin = (push * width.max(1.0)).min(0.49 * width.max(1e-12));
                v[i] = v[i].clamp(l + margin, u - margin);
                if width <= 0.0 {
                    v[i] = l;
                }
            }
            (true, false) => {
                let margin = push * l.abs().max(1.0);
                if v[i] < l + margin {
                    v[i] = l + margin;
                }
            }
            (false, true) => {
                let margin = push * u.abs().max(1.0);
                if v[i] > u - margin {
                    v[i] = u - margin;
                }
            }
            (false, false) => {}
        }
    }
}

fn inf_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nlp::test_problems::{EqualityQp, Hs071};
    use crate::nlp::Nlp;
    use gridsim_sparse::Coo;

    #[test]
    fn equality_qp_reaches_known_solution() {
        let report = IpmSolver::default().solve(&EqualityQp);
        assert!(report.is_optimal(), "status {:?}", report.status);
        assert!((report.x[0] - 0.5).abs() < 1e-6, "x0 = {}", report.x[0]);
        assert!((report.x[1] - 0.5).abs() < 1e-6);
        assert!((report.objective - 0.5).abs() < 1e-6);
        // The equality multiplier is -1 at the optimum (gradient 2*0.5 = 1).
        assert!((report.lambda_eq[0] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn hs071_reaches_known_solution() {
        let report = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            ..Default::default()
        })
        .solve(&Hs071);
        assert!(report.is_optimal(), "status {:?}", report.status);
        assert!(
            (report.objective - 17.0140173).abs() < 1e-3,
            "objective {}",
            report.objective
        );
        let expected = [1.0, 4.7429994, 3.8211503, 1.3794082];
        for (a, b) in report.x.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert!(report.primal_infeasibility < 1e-7);
    }

    /// A bound-constrained problem whose solution sits on a bound:
    /// `min (x-2)² s.t. 0 <= x <= 1` -> x = 1.
    struct BoundOnly;
    impl Nlp for BoundOnly {
        fn num_vars(&self) -> usize {
            1
        }
        fn num_eq(&self) -> usize {
            0
        }
        fn num_ineq(&self) -> usize {
            0
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0], vec![1.0])
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![0.2]
        }
        fn objective(&self, x: &[f64]) -> f64 {
            (x[0] - 2.0).powi(2)
        }
        fn objective_grad(&self, x: &[f64], g: &mut [f64]) {
            g[0] = 2.0 * (x[0] - 2.0);
        }
        fn eq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
        fn ineq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
        fn eq_jacobian(&self, _x: &[f64]) -> Coo {
            Coo::new(0, 1)
        }
        fn ineq_jacobian(&self, _x: &[f64]) -> Coo {
            Coo::new(0, 1)
        }
        fn lagrangian_hessian(&self, _x: &[f64], s: f64, _le: &[f64], _li: &[f64]) -> Coo {
            let mut h = Coo::new(1, 1);
            h.push(0, 0, 2.0 * s);
            h
        }
    }

    #[test]
    fn active_bound_solution() {
        let report = IpmSolver::default().solve(&BoundOnly);
        assert!(report.is_optimal());
        assert!((report.x[0] - 1.0).abs() < 1e-5, "x = {}", report.x[0]);
        assert!((report.objective - 1.0).abs() < 1e-4);
        // The barrier keeps every iterate strictly interior even though the
        // solution is on the bound.
        assert!(report.x[0] < 1.0);
    }

    /// A boundary-violating trial is rejected outright by the line search's
    /// trial evaluation — not clamped into `ln(1e-300)` and compared on
    /// merit, which is how the pre-filter solver accepted bound-crashing
    /// steps. Covers at-bound, past-bound, and past-upper trials, plus the
    /// slack block of an inequality problem.
    #[test]
    fn boundary_violating_trial_is_rejected() {
        let (lower, upper) = (vec![0.0], vec![1.0]);
        // Strictly interior: evaluates.
        assert!(eval_trial(&BoundOnly, &[0.5], &lower, &upper, 1, 0, 0, 0.1, 1.0).is_some());
        // At either bound or beyond: rejected (the barrier is infinite).
        for v in [0.0, -0.3, 1.0, 1.7] {
            assert!(
                eval_trial(&BoundOnly, &[v], &lower, &upper, 1, 0, 0, 0.1, 1.0).is_none(),
                "trial at v = {v} must be rejected"
            );
        }
        // Slack block: v = [x0, x1, s]; s <= 0 violates the slack bound.
        let (lower, upper) = (
            vec![f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0],
            vec![f64::INFINITY; 3],
        );
        assert!(eval_trial(
            &InequalityQp,
            &[0.2, 0.2, 0.6],
            &lower,
            &upper,
            2,
            0,
            1,
            0.1,
            1.0
        )
        .is_some());
        assert!(
            eval_trial(
                &InequalityQp,
                &[0.2, 0.2, 0.0],
                &lower,
                &upper,
                2,
                0,
                1,
                0.1,
                1.0
            )
            .is_none(),
            "zero slack must be rejected"
        );
        assert!(
            eval_trial(
                &InequalityQp,
                &[0.2, 0.2, -0.4],
                &lower,
                &upper,
                2,
                0,
                1,
                0.1,
                1.0
            )
            .is_none(),
            "negative slack must be rejected"
        );
    }

    #[test]
    fn filter_margins_dominate_and_prune() {
        let mut filter = Filter::new(1e4);
        // The θ_max cap rejects wildly infeasible pairs no matter how good φ.
        assert!(!filter.acceptable(2e4, -1e9));
        filter.add(1.0, 10.0);
        // Dominated pair (no margin of improvement in either measure).
        assert!(!filter.acceptable(1.0, 10.0));
        // Enough θ improvement or enough φ improvement is acceptable.
        assert!(filter.acceptable(0.5, 11.0));
        assert!(filter.acceptable(1.0, 9.0));
        // A dominating new entry prunes the old one.
        filter.add(0.5, 5.0);
        assert_eq!(filter.entries.len(), 2, "entries {:?}", filter.entries);
        filter.reset();
        assert_eq!(filter.entries.len(), 1);
        assert!(filter.acceptable(1.0, 10.0));
    }

    /// Inequality-constrained QP: `min x² + y² s.t. x + y >= 1`
    /// (as `1 - x - y <= 0`), solution (0.5, 0.5).
    struct InequalityQp;
    impl Nlp for InequalityQp {
        fn num_vars(&self) -> usize {
            2
        }
        fn num_eq(&self) -> usize {
            0
        }
        fn num_ineq(&self) -> usize {
            1
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![f64::NEG_INFINITY; 2], vec![f64::INFINITY; 2])
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![-1.0, 2.5]
        }
        fn objective(&self, x: &[f64]) -> f64 {
            x[0] * x[0] + x[1] * x[1]
        }
        fn objective_grad(&self, x: &[f64], g: &mut [f64]) {
            g[0] = 2.0 * x[0];
            g[1] = 2.0 * x[1];
        }
        fn eq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
        fn ineq_constraints(&self, x: &[f64], c: &mut [f64]) {
            c[0] = 1.0 - x[0] - x[1];
        }
        fn eq_jacobian(&self, _x: &[f64]) -> Coo {
            Coo::new(0, 2)
        }
        fn ineq_jacobian(&self, _x: &[f64]) -> Coo {
            let mut j = Coo::new(1, 2);
            j.push(0, 0, -1.0);
            j.push(0, 1, -1.0);
            j
        }
        fn lagrangian_hessian(&self, _x: &[f64], s: f64, _le: &[f64], _li: &[f64]) -> Coo {
            let mut h = Coo::new(2, 2);
            h.push(0, 0, 2.0 * s);
            h.push(1, 1, 2.0 * s);
            h
        }
    }

    #[test]
    fn inequality_qp_active_at_solution() {
        let report = IpmSolver::default().solve(&InequalityQp);
        assert!(report.is_optimal(), "status {:?}", report.status);
        assert!((report.x[0] - 0.5).abs() < 1e-5);
        assert!((report.x[1] - 0.5).abs() < 1e-5);
        // Multiplier of the active inequality is positive.
        assert!(report.lambda_ineq[0] > 0.1);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let cold = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            ..Default::default()
        })
        .solve(&Hs071);
        assert!(cold.is_optimal());
        let warm = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            initial_point: Some(cold.x.clone()),
            initial_multipliers: Some(
                cold.lambda_eq
                    .iter()
                    .chain(cold.lambda_ineq.iter())
                    .copied()
                    .collect(),
            ),
            ..Default::default()
        })
        .solve(&Hs071);
        assert!(warm.is_optimal());
        // The interior-point method pushes the warm point back into the
        // interior, so warm starting helps only mildly (this is the paper's
        // observation about Ipopt in Section IV-C).
        assert!(warm.iterations <= cold.iterations + 2);
    }

    #[test]
    fn iteration_log_is_populated() {
        let report = IpmSolver::default().solve(&EqualityQp);
        assert!(!report.log.is_empty());
        assert_eq!(report.log[0].iter, 0);
        assert!(report.factorizations >= report.iterations);
        // The full strategy pays a symbolic analysis per factorization.
        assert_eq!(report.symbolic_analyses, report.factorizations);
    }

    #[test]
    fn easy_problems_need_no_globalization_fallbacks() {
        // On well-scaled convex problems every full step is acceptable: the
        // watchdog and restoration must stay cold, and the counters say so.
        for report in [
            IpmSolver::default().solve(&EqualityQp),
            IpmSolver::default().solve(&InequalityQp),
            IpmSolver::default().solve(&BoundOnly),
        ] {
            assert!(report.is_optimal());
            assert_eq!(report.watchdog_steps, 0);
            assert_eq!(report.restorations, 0);
        }
    }

    fn condensed_solver(tol: f64) -> IpmSolver {
        IpmSolver::new(IpmOptions {
            tol,
            kkt_strategy: crate::kkt_condensed::KktStrategy::Condensed,
            ..Default::default()
        })
    }

    #[test]
    fn condensed_strategy_matches_full_on_hs071() {
        let full = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            ..Default::default()
        })
        .solve(&Hs071);
        let condensed = condensed_solver(1e-7).solve(&Hs071);
        assert!(condensed.is_optimal(), "status {:?}", condensed.status);
        assert!(
            (condensed.objective - full.objective).abs() < 1e-5 * full.objective.abs(),
            "objectives {} vs {}",
            condensed.objective,
            full.objective
        );
        for (a, b) in condensed.x.iter().zip(&full.x) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // One symbolic analysis for the whole solve, numeric
        // refactorizations every iteration.
        assert!(
            condensed.symbolic_analyses <= 2,
            "symbolic analyses {}",
            condensed.symbolic_analyses
        );
        assert!(condensed.factorizations >= condensed.iterations);
        assert!(condensed.factorizations > condensed.symbolic_analyses);
    }

    #[test]
    fn condensed_strategy_solves_inequality_and_bound_problems() {
        let ineq = condensed_solver(1e-6).solve(&InequalityQp);
        assert!(ineq.is_optimal(), "status {:?}", ineq.status);
        assert!((ineq.x[0] - 0.5).abs() < 1e-5);
        assert!((ineq.x[1] - 0.5).abs() < 1e-5);
        assert!(ineq.lambda_ineq[0] > 0.1);

        let bound = condensed_solver(1e-6).solve(&BoundOnly);
        assert!(bound.is_optimal());
        assert!((bound.x[0] - 1.0).abs() < 1e-5);

        let eq = condensed_solver(1e-6).solve(&EqualityQp);
        assert!(eq.is_optimal());
        assert!((eq.x[0] - 0.5).abs() < 1e-6);
        assert!((eq.lambda_eq[0] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn shared_cache_reuses_symbolic_across_warm_resolves() {
        let mut cache = crate::kkt_condensed::KktCache::new();
        let solver = condensed_solver(1e-7);
        let cold = solver.solve_with_cache(&Hs071, &mut cache);
        assert!(cold.is_optimal());
        let after_cold = cache.symbolic_analyses();
        let warm_solver = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            kkt_strategy: crate::kkt_condensed::KktStrategy::Condensed,
            initial_point: Some(cold.x.clone()),
            initial_multipliers: Some(
                cold.lambda_eq
                    .iter()
                    .chain(cold.lambda_ineq.iter())
                    .copied()
                    .collect(),
            ),
            ..Default::default()
        });
        let warm = warm_solver.solve_with_cache(&Hs071, &mut cache);
        assert!(warm.is_optimal());
        // The warm re-solve rode the frozen pattern: no new analysis.
        assert_eq!(cache.symbolic_analyses(), after_cold);
        assert_eq!(warm.symbolic_analyses, 0);
        assert!(warm.factorizations > 0);
    }

    /// A badly scaled objective (gradient ~1e4 at the start) exercises the
    /// gradient-based scaling: without it the multiplier steps integrate to
    /// the gradient's magnitude and the merit/filter has no chance; with
    /// `s_f = 100/‖∇f‖∞` the internal problem is tame while the report
    /// carries unscaled values.
    #[test]
    fn badly_scaled_objective_converges_with_correct_report() {
        struct ScaledQp;
        impl Nlp for ScaledQp {
            fn num_vars(&self) -> usize {
                2
            }
            fn num_eq(&self) -> usize {
                1
            }
            fn num_ineq(&self) -> usize {
                0
            }
            fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
                (vec![f64::NEG_INFINITY; 2], vec![f64::INFINITY; 2])
            }
            fn initial_point(&self) -> Vec<f64> {
                vec![2.0, -1.0]
            }
            fn objective(&self, x: &[f64]) -> f64 {
                1e4 * (x[0] * x[0] + x[1] * x[1])
            }
            fn objective_grad(&self, x: &[f64], g: &mut [f64]) {
                g[0] = 2e4 * x[0];
                g[1] = 2e4 * x[1];
            }
            fn eq_constraints(&self, x: &[f64], c: &mut [f64]) {
                c[0] = x[0] + x[1] - 1.0;
            }
            fn ineq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
            fn eq_jacobian(&self, _x: &[f64]) -> Coo {
                let mut j = Coo::new(1, 2);
                j.push(0, 0, 1.0);
                j.push(0, 1, 1.0);
                j
            }
            fn ineq_jacobian(&self, _x: &[f64]) -> Coo {
                Coo::new(0, 2)
            }
            fn lagrangian_hessian(&self, _x: &[f64], s: f64, _le: &[f64], _li: &[f64]) -> Coo {
                let mut h = Coo::new(2, 2);
                h.push(0, 0, 2e4 * s);
                h.push(1, 1, 2e4 * s);
                h
            }
        }
        let report = IpmSolver::default().solve(&ScaledQp);
        assert!(report.is_optimal(), "status {:?}", report.status);
        assert!((report.x[0] - 0.5).abs() < 1e-4, "x0 = {}", report.x[0]);
        assert!((report.x[1] - 0.5).abs() < 1e-4);
        // Objective reported unscaled, multiplier unscaled: at the optimum
        // ∇f + λ ∇c = 0 → λ = −2e4·0.5 = −1e4.
        assert!((report.objective - 5e3).abs() < 1.0);
        assert!(
            (report.lambda_eq[0] + 1e4).abs() < 1.0,
            "lambda = {}",
            report.lambda_eq[0]
        );
    }

    #[test]
    fn unconstrained_problem_is_a_newton_solve() {
        /// `min (x-3)² + (y+1)²` with no constraints or bounds.
        struct Unconstrained;
        impl Nlp for Unconstrained {
            fn num_vars(&self) -> usize {
                2
            }
            fn num_eq(&self) -> usize {
                0
            }
            fn num_ineq(&self) -> usize {
                0
            }
            fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
                (vec![f64::NEG_INFINITY; 2], vec![f64::INFINITY; 2])
            }
            fn initial_point(&self) -> Vec<f64> {
                vec![0.0, 0.0]
            }
            fn objective(&self, x: &[f64]) -> f64 {
                (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2)
            }
            fn objective_grad(&self, x: &[f64], g: &mut [f64]) {
                g[0] = 2.0 * (x[0] - 3.0);
                g[1] = 2.0 * (x[1] + 1.0);
            }
            fn eq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
            fn ineq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
            fn eq_jacobian(&self, _x: &[f64]) -> Coo {
                Coo::new(0, 2)
            }
            fn ineq_jacobian(&self, _x: &[f64]) -> Coo {
                Coo::new(0, 2)
            }
            fn lagrangian_hessian(&self, _x: &[f64], s: f64, _le: &[f64], _li: &[f64]) -> Coo {
                let mut h = Coo::new(2, 2);
                h.push(0, 0, 2.0 * s);
                h.push(1, 1, 2.0 * s);
                h
            }
        }
        let report = IpmSolver::default().solve(&Unconstrained);
        assert!(report.is_optimal());
        assert!((report.x[0] - 3.0).abs() < 1e-6);
        assert!((report.x[1] + 1.0).abs() < 1e-6);
        assert!(report.iterations <= 3);
    }
}
