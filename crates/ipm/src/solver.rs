//! The primal–dual interior-point iteration.
//!
//! Inequalities are slacked (`c_I(x) + s = 0`, `s ≥ 0`), bounds are handled
//! with logarithmic barriers, and each Newton step solves the augmented KKT
//! system assembled by [`crate::kkt`] with the sparse LDLᵀ of
//! [`gridsim_sparse`]. Inertia is corrected by increasing primal
//! regularization, steps respect the fraction-to-boundary rule, and a simple
//! ℓ1-merit backtracking line search guards against divergence. The barrier
//! parameter decreases monotonically once the barrier subproblem is solved to
//! a multiple of μ (Fiacco–McCormick), as in Ipopt's monotone mode.

use crate::kkt::{assemble_kkt, KktDims};
use crate::kkt_condensed::{KktCache, KktStrategy};
use crate::nlp::Nlp;
use crate::report::{IpmStatus, IterationRecord, SolveReport};
use gridsim_batch::Device;
use gridsim_sparse::{LdlFactor, LdlOptions, Ordering};
use std::time::Instant;

/// Options for the interior-point solver.
#[derive(Debug, Clone)]
pub struct IpmOptions {
    /// Convergence tolerance on the unscaled KKT error.
    pub tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Initial barrier parameter.
    pub mu_init: f64,
    /// Fraction-to-boundary floor (`τ = max(tau_min, 1 − μ)`).
    pub tau_min: f64,
    /// Relative push of the initial point away from its bounds.
    pub bound_push: f64,
    /// Maximum number of inertia-correction refactorizations per step.
    pub max_refactorizations: usize,
    /// Maximum backtracking steps in the merit line search.
    pub max_backtracks: usize,
    /// Dual regularization added to the constraint block of the KKT system.
    pub delta_c: f64,
    /// Optional primal warm start overriding [`Nlp::initial_point`].
    pub initial_point: Option<Vec<f64>>,
    /// Optional warm start for the constraint multipliers `[λ_E; λ_I]`.
    pub initial_multipliers: Option<Vec<f64>>,
    /// Which KKT path each Newton step uses: the full augmented system
    /// (fresh symbolic analysis per factorization) or the condensed-space
    /// system with frozen-pattern numeric refactorization on the batch
    /// device.
    pub kkt_strategy: KktStrategy,
}

impl Default for IpmOptions {
    fn default() -> Self {
        IpmOptions {
            tol: 1e-6,
            max_iter: 300,
            mu_init: 0.1,
            tau_min: 0.99,
            bound_push: 1e-2,
            max_refactorizations: 40,
            max_backtracks: 12,
            delta_c: 1e-8,
            initial_point: None,
            initial_multipliers: None,
            kkt_strategy: KktStrategy::default(),
        }
    }
}

/// The interior-point solver.
#[derive(Debug, Clone, Default)]
pub struct IpmSolver {
    /// Options used by [`IpmSolver::solve`].
    pub options: IpmOptions,
    /// Batch device the condensed strategy refactorizes on (the per-row
    /// column updates of the numeric LDLᵀ fan out as thread blocks).
    pub device: Device,
}

impl IpmSolver {
    /// Create a solver with the given options.
    pub fn new(options: IpmOptions) -> Self {
        IpmSolver {
            options,
            device: Device::default(),
        }
    }

    /// Replace the batch device used by the condensed KKT strategy.
    pub fn with_device(mut self, device: Device) -> Self {
        self.device = device;
        self
    }

    /// Solve the NLP with a fresh KKT cache.
    pub fn solve<N: Nlp>(&self, nlp: &N) -> SolveReport {
        let mut cache = KktCache::new();
        self.solve_with_cache(nlp, &mut cache)
    }

    /// Solve the NLP, reusing (and updating) a caller-owned [`KktCache`].
    ///
    /// Under [`KktStrategy::Condensed`], consecutive solves of structurally
    /// identical NLPs — the rolling-horizon tracking workload, where each
    /// period re-solves the same network at drifted loads — share one
    /// symbolic analysis across the whole trajectory. The full strategy
    /// ignores the cache.
    pub fn solve_with_cache<N: Nlp>(&self, nlp: &N, cache: &mut KktCache) -> SolveReport {
        let start_time = Instant::now();
        let opts = &self.options;
        let symbolic_before = cache.symbolic_analyses();

        let nx = nlp.num_vars();
        let m_eq = nlp.num_eq();
        let m_ineq = nlp.num_ineq();
        let dims = KktDims {
            nx,
            ns: m_ineq,
            m_eq,
            m_ineq,
        };
        let nv = dims.nv();
        let mc = dims.mc();

        // Bounds of the slacked variable vector v = [x; s].
        let (lx, ux) = nlp.bounds();
        let mut lower = lx.clone();
        let mut upper = ux.clone();
        lower.extend(std::iter::repeat_n(0.0, m_ineq));
        upper.extend(std::iter::repeat_n(f64::INFINITY, m_ineq));

        // --- initial point ---
        let x_start = opts
            .initial_point
            .clone()
            .unwrap_or_else(|| nlp.initial_point());
        assert_eq!(x_start.len(), nx, "initial point has wrong dimension");
        let mut v = vec![0.0; nv];
        v[..nx].copy_from_slice(&x_start);
        // Slacks from the inequality values.
        let mut ci = vec![0.0; m_ineq];
        nlp.ineq_constraints(&x_start, &mut ci);
        for k in 0..m_ineq {
            v[nx + k] = (-ci[k]).max(opts.bound_push);
        }
        push_into_interior(&mut v, &lower, &upper, opts.bound_push);

        let mut lambda = vec![0.0; mc];
        if let Some(l0) = &opts.initial_multipliers {
            if l0.len() == mc {
                lambda.copy_from_slice(l0);
            }
        }
        let mut mu = opts.mu_init;
        let mut zl = vec![0.0; nv];
        let mut zu = vec![0.0; nv];
        for i in 0..nv {
            if lower[i].is_finite() {
                zl[i] = mu / (v[i] - lower[i]);
            }
            if upper[i].is_finite() {
                zu[i] = mu / (upper[i] - v[i]);
            }
        }

        // Probe the model pattern once with unit multipliers so the
        // condensed structure covers every coordinate the callbacks can emit
        // (they prune value-zero triplets, and cold starts carry λ = 0);
        // growth later in the solve still rebuilds the union as a fallback.
        if opts.kkt_strategy == KktStrategy::Condensed {
            let x0 = &v[..nx];
            let ones_eq = vec![1.0; m_eq];
            let ones_ineq = vec![1.0; m_ineq];
            let probe_hess = nlp.lagrangian_hessian(x0, 1.0, &ones_eq, &ones_ineq);
            let probe_jac_eq = nlp.eq_jacobian(x0);
            let probe_jac_ineq = nlp.ineq_jacobian(x0);
            cache.ensure_structure(&dims, &probe_hess, &probe_jac_eq, &probe_jac_ineq);
        }

        // Workspace.
        let mut grad_f = vec![0.0; nx];
        let mut ce = vec![0.0; m_eq];
        let mut log = Vec::new();
        let mut factorizations = 0usize;
        let mut symbolic_full = 0usize;
        let mut ordering: Option<Ordering> = None;
        let mut delta_w_last = 0.0f64;
        let mut status = IpmStatus::MaxIterations;
        let mut iterations = 0usize;
        let mut kkt_error = f64::INFINITY;
        let mut primal_inf = f64::INFINITY;

        'outer: for iter in 0..opts.max_iter {
            iterations = iter;
            let x = &v[..nx];

            // --- evaluations ---
            let f = nlp.objective(x);
            nlp.objective_grad(x, &mut grad_f);
            nlp.eq_constraints(x, &mut ce);
            nlp.ineq_constraints(x, &mut ci);
            let jac_eq = nlp.eq_jacobian(x);
            let jac_ineq = nlp.ineq_jacobian(x);

            // --- residuals ---
            // Dual residual over v = [x; s].
            let mut r_d = vec![0.0; nv];
            r_d[..nx].copy_from_slice(&grad_f);
            // + J_E^T lam_eq + J_I^T lam_ineq on the x block.
            for k in 0..jac_eq.nnz() {
                r_d[jac_eq.cols[k]] += jac_eq.vals[k] * lambda[jac_eq.rows[k]];
            }
            for k in 0..jac_ineq.nnz() {
                r_d[jac_ineq.cols[k]] += jac_ineq.vals[k] * lambda[m_eq + jac_ineq.rows[k]];
            }
            // Slack block: lam_ineq - zl_s (+ zu_s = 0).
            for k in 0..m_ineq {
                r_d[nx + k] += lambda[m_eq + k];
            }
            for i in 0..nv {
                r_d[i] += zu[i] - zl[i];
            }
            // Constraint residual.
            let mut r_c = vec![0.0; mc];
            r_c[..m_eq].copy_from_slice(&ce);
            for k in 0..m_ineq {
                r_c[m_eq + k] = ci[k] + v[nx + k];
            }
            // Complementarity.
            let comp_error_mu = |mu: f64| -> f64 {
                let mut e: f64 = 0.0;
                for i in 0..nv {
                    if lower[i].is_finite() {
                        e = e.max(((v[i] - lower[i]) * zl[i] - mu).abs());
                    }
                    if upper[i].is_finite() {
                        e = e.max(((upper[i] - v[i]) * zu[i] - mu).abs());
                    }
                }
                e
            };

            let dual_inf = inf_norm(&r_d);
            primal_inf = inf_norm(&r_c);
            kkt_error = dual_inf.max(primal_inf).max(comp_error_mu(0.0));

            log.push(IterationRecord {
                iter,
                objective: f,
                primal_infeasibility: primal_inf,
                dual_infeasibility: dual_inf,
                mu,
                alpha_primal: 0.0,
                delta_w: delta_w_last,
            });

            if kkt_error <= opts.tol {
                status = IpmStatus::Optimal;
                break 'outer;
            }

            // --- barrier update (monotone) ---
            let kappa_eps = 10.0;
            while dual_inf.max(primal_inf).max(comp_error_mu(mu)) <= kappa_eps * mu
                && mu > opts.tol / 10.0
            {
                mu = (opts.tol / 10.0).max((0.2 * mu).min(mu.powf(1.5)));
            }

            // --- Newton system ---
            let hess = nlp.lagrangian_hessian(x, 1.0, &lambda[..m_eq], &lambda[m_eq..]);
            let mut sigma = vec![0.0; nv];
            for i in 0..nv {
                if lower[i].is_finite() {
                    sigma[i] += zl[i] / (v[i] - lower[i]);
                }
                if upper[i].is_finite() {
                    sigma[i] += zu[i] / (upper[i] - v[i]);
                }
            }
            // rhs = [-r_d - (V-L)^{-1} comp_l + (U-V)^{-1} comp_u; -r_c]
            let mut rhs = vec![0.0; dims.dim()];
            for i in 0..nv {
                let mut r = -r_d[i];
                if lower[i].is_finite() {
                    let d = v[i] - lower[i];
                    r -= (d * zl[i] - mu) / d;
                }
                if upper[i].is_finite() {
                    let d = upper[i] - v[i];
                    r += (d * zu[i] - mu) / d;
                }
                rhs[i] = r;
            }
            for j in 0..mc {
                rhs[nv + j] = -r_c[j];
            }

            // Factorize with inertia correction.
            let mut delta_w = 0.0f64;
            let mut attempt = 0usize;
            // A successful factorization before its (deferred) triangular
            // solve: the full strategy carries the factor so inertia-rejected
            // attempts never pay the solve.
            enum Factorized {
                Full(LdlFactor),
                Condensed(crate::kkt_condensed::CondensedFactor),
            }
            let solution = loop {
                factorizations += 1;
                // `Some((factorized, inertia_ok))` on a successful
                // factorization, `None` on breakdown; both strategies share
                // the retry loop.
                let attempt_result = match opts.kkt_strategy {
                    KktStrategy::Full => {
                        let kkt = assemble_kkt(
                            &dims,
                            &hess,
                            &sigma,
                            &jac_eq,
                            &jac_ineq,
                            delta_w,
                            opts.delta_c,
                        );
                        if ordering.is_none() {
                            ordering = Some(Ordering::rcm(&kkt));
                        }
                        let ldl_opts = LdlOptions {
                            expected_signs: dims.expected_signs(),
                            pivot_tol: 1e-13,
                            pivot_reg: 1e-9,
                        };
                        symbolic_full += 1;
                        LdlFactor::factorize_with(
                            &kkt,
                            ordering.clone().expect("ordering computed above"),
                            &ldl_opts,
                        )
                        .ok()
                        .map(|fac| {
                            let (pos, neg, zero) = fac.inertia();
                            let inertia_ok =
                                pos == nv && neg == mc && zero == 0 && fac.num_regularized == 0;
                            (Factorized::Full(fac), inertia_ok)
                        })
                    }
                    KktStrategy::Condensed => cache
                        .factorize_condensed(
                            &self.device,
                            &dims,
                            &hess,
                            &sigma,
                            &jac_eq,
                            &jac_ineq,
                            delta_w,
                            opts.delta_c,
                            1e-13,
                            1e-9,
                        )
                        .ok()
                        .map(|cond| {
                            let inertia_ok =
                                cond.inertia == (nx, m_eq, 0) && cond.num_regularized == 0;
                            (Factorized::Condensed(cond), inertia_ok)
                        }),
                };
                match attempt_result {
                    Some((factorized, inertia_ok)) => {
                        if inertia_ok || attempt >= opts.max_refactorizations {
                            break Some(match factorized {
                                Factorized::Full(fac) => fac.solve(&rhs),
                                Factorized::Condensed(cond) => cond.solve(&jac_ineq, &rhs),
                            });
                        }
                    }
                    None => {
                        if attempt >= opts.max_refactorizations {
                            break None;
                        }
                    }
                }
                attempt += 1;
                delta_w = if delta_w == 0.0 {
                    if delta_w_last == 0.0 {
                        1e-4
                    } else {
                        (delta_w_last / 3.0).max(1e-10)
                    }
                } else {
                    delta_w * 10.0
                };
                if delta_w > 1e12 {
                    break None;
                }
            };
            let step = match solution {
                Some(s) => s,
                None => {
                    status = IpmStatus::NumericalError;
                    break 'outer;
                }
            };
            delta_w_last = delta_w;

            let dv = &step[..nv];
            let dlambda = &step[nv..];

            // Bound-multiplier steps.
            let mut dzl = vec![0.0; nv];
            let mut dzu = vec![0.0; nv];
            for i in 0..nv {
                if lower[i].is_finite() {
                    let d = v[i] - lower[i];
                    dzl[i] = -((d * zl[i] - mu) / d) - zl[i] / d * dv[i];
                }
                if upper[i].is_finite() {
                    let d = upper[i] - v[i];
                    dzu[i] = -((d * zu[i] - mu) / d) + zu[i] / d * dv[i];
                }
            }

            // --- fraction to boundary ---
            let tau = opts.tau_min.max(1.0 - mu);
            let mut alpha_pri_max: f64 = 1.0;
            for i in 0..nv {
                if dv[i] < 0.0 && lower[i].is_finite() {
                    alpha_pri_max = alpha_pri_max.min(tau * (v[i] - lower[i]) / (-dv[i]));
                }
                if dv[i] > 0.0 && upper[i].is_finite() {
                    alpha_pri_max = alpha_pri_max.min(tau * (upper[i] - v[i]) / dv[i]);
                }
            }
            let mut alpha_dual: f64 = 1.0;
            for i in 0..nv {
                if dzl[i] < 0.0 && zl[i] > 0.0 {
                    alpha_dual = alpha_dual.min(tau * zl[i] / (-dzl[i]));
                }
                if dzu[i] < 0.0 && zu[i] > 0.0 {
                    alpha_dual = alpha_dual.min(tau * zu[i] / (-dzu[i]));
                }
            }

            // --- merit line search ---
            let nu = 1.0_f64
                .max(2.0 * lambda.iter().map(|l| l.abs()).fold(0.0, f64::max))
                .max(2.0 * dlambda.iter().map(|l| l.abs()).fold(0.0, f64::max));
            let merit = |v_trial: &[f64]| -> f64 {
                let x_t = &v_trial[..nx];
                let mut phi = nlp.objective(x_t);
                for i in 0..nv {
                    if lower[i].is_finite() {
                        phi -= mu * (v_trial[i] - lower[i]).max(1e-300).ln();
                    }
                    if upper[i].is_finite() {
                        phi -= mu * (upper[i] - v_trial[i]).max(1e-300).ln();
                    }
                }
                let mut ce_t = vec![0.0; m_eq];
                let mut ci_t = vec![0.0; m_ineq];
                nlp.eq_constraints(x_t, &mut ce_t);
                nlp.ineq_constraints(x_t, &mut ci_t);
                let mut viol = ce_t.iter().map(|c| c.abs()).sum::<f64>();
                for k in 0..m_ineq {
                    viol += (ci_t[k] + v_trial[nx + k]).abs();
                }
                phi + nu * viol
            };
            let merit_0 = merit(&v);
            let mut alpha = alpha_pri_max;
            let mut v_new = v.clone();
            for bt in 0..=opts.max_backtracks {
                for i in 0..nv {
                    v_new[i] = v[i] + alpha * dv[i];
                }
                let m_new = merit(&v_new);
                if m_new <= merit_0 - 1e-8 * alpha * merit_0.abs().max(1.0)
                    || m_new <= merit_0 + 1e-12
                    || bt == opts.max_backtracks
                {
                    break;
                }
                alpha *= 0.5;
            }

            // --- updates ---
            v.copy_from_slice(&v_new);
            for j in 0..mc {
                lambda[j] += alpha * dlambda[j];
            }
            for i in 0..nv {
                zl[i] += alpha_dual * dzl[i];
                zu[i] += alpha_dual * dzu[i];
            }
            // Keep bound multipliers within a large multiple of the primal
            // estimates (Ipopt's kappa_Sigma safeguard).
            let kappa_sigma = 1e10;
            for i in 0..nv {
                if lower[i].is_finite() {
                    let p = mu / (v[i] - lower[i]).max(1e-300);
                    zl[i] = zl[i].clamp(p / kappa_sigma, p * kappa_sigma);
                }
                if upper[i].is_finite() {
                    let p = mu / (upper[i] - v[i]).max(1e-300);
                    zu[i] = zu[i].clamp(p / kappa_sigma, p * kappa_sigma);
                }
            }
            if let Some(last) = log.last_mut() {
                last.alpha_primal = alpha;
                last.delta_w = delta_w;
            }
        }

        let x_final = v[..nx].to_vec();
        let objective = nlp.objective(&x_final);
        let symbolic_analyses = match opts.kkt_strategy {
            KktStrategy::Full => symbolic_full,
            KktStrategy::Condensed => cache.symbolic_analyses() - symbolic_before,
        };
        SolveReport {
            x: x_final,
            objective,
            lambda_eq: lambda[..m_eq].to_vec(),
            lambda_ineq: lambda[m_eq..].to_vec(),
            status,
            iterations,
            kkt_error,
            primal_infeasibility: primal_inf,
            solve_time: start_time.elapsed(),
            factorizations,
            symbolic_analyses,
            log,
        }
    }
}

/// Push a point strictly inside its bounds (Ipopt's `bound_push`).
fn push_into_interior(v: &mut [f64], lower: &[f64], upper: &[f64], push: f64) {
    for i in 0..v.len() {
        let (l, u) = (lower[i], upper[i]);
        match (l.is_finite(), u.is_finite()) {
            (true, true) => {
                let width = u - l;
                let margin = (push * width.max(1.0)).min(0.49 * width.max(1e-12));
                v[i] = v[i].clamp(l + margin, u - margin);
                if width <= 0.0 {
                    v[i] = l;
                }
            }
            (true, false) => {
                let margin = push * l.abs().max(1.0);
                if v[i] < l + margin {
                    v[i] = l + margin;
                }
            }
            (false, true) => {
                let margin = push * u.abs().max(1.0);
                if v[i] > u - margin {
                    v[i] = u - margin;
                }
            }
            (false, false) => {}
        }
    }
}

fn inf_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nlp::test_problems::{EqualityQp, Hs071};
    use crate::nlp::Nlp;
    use gridsim_sparse::Coo;

    #[test]
    fn equality_qp_reaches_known_solution() {
        let report = IpmSolver::default().solve(&EqualityQp);
        assert!(report.is_optimal(), "status {:?}", report.status);
        assert!((report.x[0] - 0.5).abs() < 1e-6, "x0 = {}", report.x[0]);
        assert!((report.x[1] - 0.5).abs() < 1e-6);
        assert!((report.objective - 0.5).abs() < 1e-6);
        // The equality multiplier is -1 at the optimum (gradient 2*0.5 = 1).
        assert!((report.lambda_eq[0] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn hs071_reaches_known_solution() {
        let report = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            ..Default::default()
        })
        .solve(&Hs071);
        assert!(report.is_optimal(), "status {:?}", report.status);
        assert!(
            (report.objective - 17.0140173).abs() < 1e-3,
            "objective {}",
            report.objective
        );
        let expected = [1.0, 4.7429994, 3.8211503, 1.3794082];
        for (a, b) in report.x.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        assert!(report.primal_infeasibility < 1e-7);
    }

    /// A bound-constrained problem whose solution sits on a bound:
    /// `min (x-2)² s.t. 0 <= x <= 1` -> x = 1.
    struct BoundOnly;
    impl Nlp for BoundOnly {
        fn num_vars(&self) -> usize {
            1
        }
        fn num_eq(&self) -> usize {
            0
        }
        fn num_ineq(&self) -> usize {
            0
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![0.0], vec![1.0])
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![0.2]
        }
        fn objective(&self, x: &[f64]) -> f64 {
            (x[0] - 2.0).powi(2)
        }
        fn objective_grad(&self, x: &[f64], g: &mut [f64]) {
            g[0] = 2.0 * (x[0] - 2.0);
        }
        fn eq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
        fn ineq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
        fn eq_jacobian(&self, _x: &[f64]) -> Coo {
            Coo::new(0, 1)
        }
        fn ineq_jacobian(&self, _x: &[f64]) -> Coo {
            Coo::new(0, 1)
        }
        fn lagrangian_hessian(&self, _x: &[f64], s: f64, _le: &[f64], _li: &[f64]) -> Coo {
            let mut h = Coo::new(1, 1);
            h.push(0, 0, 2.0 * s);
            h
        }
    }

    #[test]
    fn active_bound_solution() {
        let report = IpmSolver::default().solve(&BoundOnly);
        assert!(report.is_optimal());
        assert!((report.x[0] - 1.0).abs() < 1e-5, "x = {}", report.x[0]);
        assert!((report.objective - 1.0).abs() < 1e-4);
    }

    /// Inequality-constrained QP: `min x² + y² s.t. x + y >= 1`
    /// (as `1 - x - y <= 0`), solution (0.5, 0.5).
    struct InequalityQp;
    impl Nlp for InequalityQp {
        fn num_vars(&self) -> usize {
            2
        }
        fn num_eq(&self) -> usize {
            0
        }
        fn num_ineq(&self) -> usize {
            1
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![f64::NEG_INFINITY; 2], vec![f64::INFINITY; 2])
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![-1.0, 2.5]
        }
        fn objective(&self, x: &[f64]) -> f64 {
            x[0] * x[0] + x[1] * x[1]
        }
        fn objective_grad(&self, x: &[f64], g: &mut [f64]) {
            g[0] = 2.0 * x[0];
            g[1] = 2.0 * x[1];
        }
        fn eq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
        fn ineq_constraints(&self, x: &[f64], c: &mut [f64]) {
            c[0] = 1.0 - x[0] - x[1];
        }
        fn eq_jacobian(&self, _x: &[f64]) -> Coo {
            Coo::new(0, 2)
        }
        fn ineq_jacobian(&self, _x: &[f64]) -> Coo {
            let mut j = Coo::new(1, 2);
            j.push(0, 0, -1.0);
            j.push(0, 1, -1.0);
            j
        }
        fn lagrangian_hessian(&self, _x: &[f64], s: f64, _le: &[f64], _li: &[f64]) -> Coo {
            let mut h = Coo::new(2, 2);
            h.push(0, 0, 2.0 * s);
            h.push(1, 1, 2.0 * s);
            h
        }
    }

    #[test]
    fn inequality_qp_active_at_solution() {
        let report = IpmSolver::default().solve(&InequalityQp);
        assert!(report.is_optimal(), "status {:?}", report.status);
        assert!((report.x[0] - 0.5).abs() < 1e-5);
        assert!((report.x[1] - 0.5).abs() < 1e-5);
        // Multiplier of the active inequality is positive.
        assert!(report.lambda_ineq[0] > 0.1);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let cold = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            ..Default::default()
        })
        .solve(&Hs071);
        assert!(cold.is_optimal());
        let warm = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            initial_point: Some(cold.x.clone()),
            initial_multipliers: Some(
                cold.lambda_eq
                    .iter()
                    .chain(cold.lambda_ineq.iter())
                    .copied()
                    .collect(),
            ),
            ..Default::default()
        })
        .solve(&Hs071);
        assert!(warm.is_optimal());
        // The interior-point method pushes the warm point back into the
        // interior, so warm starting helps only mildly (this is the paper's
        // observation about Ipopt in Section IV-C).
        assert!(warm.iterations <= cold.iterations + 2);
    }

    #[test]
    fn iteration_log_is_populated() {
        let report = IpmSolver::default().solve(&EqualityQp);
        assert!(!report.log.is_empty());
        assert_eq!(report.log[0].iter, 0);
        assert!(report.factorizations >= report.iterations);
        // The full strategy pays a symbolic analysis per factorization.
        assert_eq!(report.symbolic_analyses, report.factorizations);
    }

    fn condensed_solver(tol: f64) -> IpmSolver {
        IpmSolver::new(IpmOptions {
            tol,
            kkt_strategy: crate::kkt_condensed::KktStrategy::Condensed,
            ..Default::default()
        })
    }

    #[test]
    fn condensed_strategy_matches_full_on_hs071() {
        let full = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            ..Default::default()
        })
        .solve(&Hs071);
        let condensed = condensed_solver(1e-7).solve(&Hs071);
        assert!(condensed.is_optimal(), "status {:?}", condensed.status);
        assert!(
            (condensed.objective - full.objective).abs() < 1e-5 * full.objective.abs(),
            "objectives {} vs {}",
            condensed.objective,
            full.objective
        );
        for (a, b) in condensed.x.iter().zip(&full.x) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // One symbolic analysis for the whole solve, numeric
        // refactorizations every iteration.
        assert!(
            condensed.symbolic_analyses <= 2,
            "symbolic analyses {}",
            condensed.symbolic_analyses
        );
        assert!(condensed.factorizations >= condensed.iterations);
        assert!(condensed.factorizations > condensed.symbolic_analyses);
    }

    #[test]
    fn condensed_strategy_solves_inequality_and_bound_problems() {
        let ineq = condensed_solver(1e-6).solve(&InequalityQp);
        assert!(ineq.is_optimal(), "status {:?}", ineq.status);
        assert!((ineq.x[0] - 0.5).abs() < 1e-5);
        assert!((ineq.x[1] - 0.5).abs() < 1e-5);
        assert!(ineq.lambda_ineq[0] > 0.1);

        let bound = condensed_solver(1e-6).solve(&BoundOnly);
        assert!(bound.is_optimal());
        assert!((bound.x[0] - 1.0).abs() < 1e-5);

        let eq = condensed_solver(1e-6).solve(&EqualityQp);
        assert!(eq.is_optimal());
        assert!((eq.x[0] - 0.5).abs() < 1e-6);
        assert!((eq.lambda_eq[0] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn shared_cache_reuses_symbolic_across_warm_resolves() {
        let mut cache = crate::kkt_condensed::KktCache::new();
        let solver = condensed_solver(1e-7);
        let cold = solver.solve_with_cache(&Hs071, &mut cache);
        assert!(cold.is_optimal());
        let after_cold = cache.symbolic_analyses();
        let warm_solver = IpmSolver::new(IpmOptions {
            tol: 1e-7,
            kkt_strategy: crate::kkt_condensed::KktStrategy::Condensed,
            initial_point: Some(cold.x.clone()),
            initial_multipliers: Some(
                cold.lambda_eq
                    .iter()
                    .chain(cold.lambda_ineq.iter())
                    .copied()
                    .collect(),
            ),
            ..Default::default()
        });
        let warm = warm_solver.solve_with_cache(&Hs071, &mut cache);
        assert!(warm.is_optimal());
        // The warm re-solve rode the frozen pattern: no new analysis.
        assert_eq!(cache.symbolic_analyses(), after_cold);
        assert_eq!(warm.symbolic_analyses, 0);
        assert!(warm.factorizations > 0);
    }

    #[test]
    fn unconstrained_problem_is_a_newton_solve() {
        /// `min (x-3)² + (y+1)²` with no constraints or bounds.
        struct Unconstrained;
        impl Nlp for Unconstrained {
            fn num_vars(&self) -> usize {
                2
            }
            fn num_eq(&self) -> usize {
                0
            }
            fn num_ineq(&self) -> usize {
                0
            }
            fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
                (vec![f64::NEG_INFINITY; 2], vec![f64::INFINITY; 2])
            }
            fn initial_point(&self) -> Vec<f64> {
                vec![0.0, 0.0]
            }
            fn objective(&self, x: &[f64]) -> f64 {
                (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2)
            }
            fn objective_grad(&self, x: &[f64], g: &mut [f64]) {
                g[0] = 2.0 * (x[0] - 3.0);
                g[1] = 2.0 * (x[1] + 1.0);
            }
            fn eq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
            fn ineq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
            fn eq_jacobian(&self, _x: &[f64]) -> Coo {
                Coo::new(0, 2)
            }
            fn ineq_jacobian(&self, _x: &[f64]) -> Coo {
                Coo::new(0, 2)
            }
            fn lagrangian_hessian(&self, _x: &[f64], s: f64, _le: &[f64], _li: &[f64]) -> Coo {
                let mut h = Coo::new(2, 2);
                h.push(0, 0, 2.0 * s);
                h.push(1, 1, 2.0 * s);
                h
            }
        }
        let report = IpmSolver::default().solve(&Unconstrained);
        assert!(report.is_optimal());
        assert!((report.x[0] - 3.0).abs() < 1e-6);
        assert!((report.x[1] + 1.0).abs() < 1e-6);
        assert!(report.iterations <= 3);
    }
}
