//! The nonlinear-program interface consumed by the interior-point solver.

use gridsim_sparse::Coo;

/// A smooth nonlinear program
///
/// ```text
/// min  f(x)
/// s.t. c_E(x)  = 0
///      c_I(x) <= 0
///      l <= x <= u
/// ```
///
/// Jacobians and the Hessian of the Lagrangian are returned as triplet
/// matrices; duplicate entries are summed. The Hessian must contain the
/// *lower or upper or full* symmetric pattern consistently — the solver
/// symmetrizes by summing `H` and `Hᵀ` off-diagonal contributions is NOT
/// done, so implementers should return the full symmetric matrix or the
/// upper triangle plus diagonal (the KKT assembly keeps only the upper
/// triangle of the symmetric system).
pub trait Nlp {
    /// Number of decision variables.
    fn num_vars(&self) -> usize;

    /// Number of equality constraints.
    fn num_eq(&self) -> usize;

    /// Number of inequality constraints (`c_I(x) <= 0`).
    fn num_ineq(&self) -> usize;

    /// Variable bounds `(l, u)`; use `f64::NEG_INFINITY` / `f64::INFINITY`
    /// for unbounded.
    fn bounds(&self) -> (Vec<f64>, Vec<f64>);

    /// A starting point (will be pushed strictly inside the bounds by the
    /// solver).
    fn initial_point(&self) -> Vec<f64>;

    /// Objective value.
    fn objective(&self, x: &[f64]) -> f64;

    /// Objective gradient written into `grad`.
    fn objective_grad(&self, x: &[f64], grad: &mut [f64]);

    /// Equality constraint values written into `c` (length [`Self::num_eq`]).
    fn eq_constraints(&self, x: &[f64], c: &mut [f64]);

    /// Inequality constraint values written into `c`
    /// (length [`Self::num_ineq`]).
    fn ineq_constraints(&self, x: &[f64], c: &mut [f64]);

    /// Jacobian of the equality constraints (rows = constraints,
    /// cols = variables).
    fn eq_jacobian(&self, x: &[f64]) -> Coo;

    /// Jacobian of the inequality constraints.
    fn ineq_jacobian(&self, x: &[f64]) -> Coo;

    /// Hessian of the Lagrangian
    /// `obj_factor * ∇²f + Σ λ_E ∇²c_E + Σ λ_I ∇²c_I`
    /// as a symmetric triplet matrix (both triangles or the full matrix).
    fn lagrangian_hessian(
        &self,
        x: &[f64],
        obj_factor: f64,
        lambda_eq: &[f64],
        lambda_ineq: &[f64],
    ) -> Coo;
}

#[cfg(test)]
pub(crate) mod test_problems {
    use super::*;

    /// `min x² + y²  s.t.  x + y = 1`, solution (0.5, 0.5), objective 0.5.
    pub struct EqualityQp;

    impl Nlp for EqualityQp {
        fn num_vars(&self) -> usize {
            2
        }
        fn num_eq(&self) -> usize {
            1
        }
        fn num_ineq(&self) -> usize {
            0
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![f64::NEG_INFINITY; 2], vec![f64::INFINITY; 2])
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![3.0, -1.0]
        }
        fn objective(&self, x: &[f64]) -> f64 {
            x[0] * x[0] + x[1] * x[1]
        }
        fn objective_grad(&self, x: &[f64], grad: &mut [f64]) {
            grad[0] = 2.0 * x[0];
            grad[1] = 2.0 * x[1];
        }
        fn eq_constraints(&self, x: &[f64], c: &mut [f64]) {
            c[0] = x[0] + x[1] - 1.0;
        }
        fn ineq_constraints(&self, _x: &[f64], _c: &mut [f64]) {}
        fn eq_jacobian(&self, _x: &[f64]) -> Coo {
            let mut j = Coo::new(1, 2);
            j.push(0, 0, 1.0);
            j.push(0, 1, 1.0);
            j
        }
        fn ineq_jacobian(&self, _x: &[f64]) -> Coo {
            Coo::new(0, 2)
        }
        fn lagrangian_hessian(&self, _x: &[f64], obj_factor: f64, _le: &[f64], _li: &[f64]) -> Coo {
            let mut h = Coo::new(2, 2);
            h.push(0, 0, 2.0 * obj_factor);
            h.push(1, 1, 2.0 * obj_factor);
            h
        }
    }

    /// Hock–Schittkowski problem 71:
    /// `min x1 x4 (x1 + x2 + x3) + x3`
    /// `s.t. x1 x2 x3 x4 >= 25`, `x1²+x2²+x3²+x4² = 40`, `1 <= x <= 5`.
    /// Known solution (1.0, 4.743, 3.8211, 1.3794), objective 17.0140173.
    pub struct Hs071;

    impl Nlp for Hs071 {
        fn num_vars(&self) -> usize {
            4
        }
        fn num_eq(&self) -> usize {
            1
        }
        fn num_ineq(&self) -> usize {
            1
        }
        fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
            (vec![1.0; 4], vec![5.0; 4])
        }
        fn initial_point(&self) -> Vec<f64> {
            vec![1.0, 5.0, 5.0, 1.0]
        }
        fn objective(&self, x: &[f64]) -> f64 {
            x[0] * x[3] * (x[0] + x[1] + x[2]) + x[2]
        }
        fn objective_grad(&self, x: &[f64], g: &mut [f64]) {
            g[0] = x[3] * (2.0 * x[0] + x[1] + x[2]);
            g[1] = x[0] * x[3];
            g[2] = x[0] * x[3] + 1.0;
            g[3] = x[0] * (x[0] + x[1] + x[2]);
        }
        fn eq_constraints(&self, x: &[f64], c: &mut [f64]) {
            c[0] = x.iter().map(|v| v * v).sum::<f64>() - 40.0;
        }
        fn ineq_constraints(&self, x: &[f64], c: &mut [f64]) {
            // x1 x2 x3 x4 >= 25  <=>  25 - prod <= 0
            c[0] = 25.0 - x[0] * x[1] * x[2] * x[3];
        }
        fn eq_jacobian(&self, x: &[f64]) -> Coo {
            let mut j = Coo::new(1, 4);
            for (i, &xi) in x.iter().enumerate() {
                j.push(0, i, 2.0 * xi);
            }
            j
        }
        fn ineq_jacobian(&self, x: &[f64]) -> Coo {
            let mut j = Coo::new(1, 4);
            j.push(0, 0, -x[1] * x[2] * x[3]);
            j.push(0, 1, -x[0] * x[2] * x[3]);
            j.push(0, 2, -x[0] * x[1] * x[3]);
            j.push(0, 3, -x[0] * x[1] * x[2]);
            j
        }
        fn lagrangian_hessian(&self, x: &[f64], s: f64, le: &[f64], li: &[f64]) -> Coo {
            let mut h = Coo::new(4, 4);
            let le0 = le[0];
            let li0 = li[0];
            // Objective Hessian.
            h.push(0, 0, s * 2.0 * x[3]);
            h.push(0, 1, s * x[3]);
            h.push(1, 0, s * x[3]);
            h.push(0, 2, s * x[3]);
            h.push(2, 0, s * x[3]);
            h.push(0, 3, s * (2.0 * x[0] + x[1] + x[2]));
            h.push(3, 0, s * (2.0 * x[0] + x[1] + x[2]));
            h.push(1, 3, s * x[0]);
            h.push(3, 1, s * x[0]);
            h.push(2, 3, s * x[0]);
            h.push(3, 2, s * x[0]);
            // Equality constraint Hessian: 2 I.
            for i in 0..4 {
                h.push(i, i, le0 * 2.0);
            }
            // Inequality constraint Hessian: -(products).
            let pairs = [
                (0, 1, x[2] * x[3]),
                (0, 2, x[1] * x[3]),
                (0, 3, x[1] * x[2]),
                (1, 2, x[0] * x[3]),
                (1, 3, x[0] * x[2]),
                (2, 3, x[0] * x[1]),
            ];
            for (i, j, v) in pairs {
                h.push(i, j, -li0 * v);
                h.push(j, i, -li0 * v);
            }
            h
        }
    }
}
