//! Assembly of the augmented primal–dual KKT system.
//!
//! The interior-point Newton step solves the symmetric quasi-definite system
//!
//! ```text
//! [ W + Σ + δ_w I      Jᵀ        ] [Δv]   [ rhs_1 ]
//! [ J                  −δ_c I    ] [Δλ] = [ rhs_2 ]
//! ```
//!
//! where `v = [x; s]` stacks the decision variables and the inequality
//! slacks, `W` is the Hessian of the Lagrangian (zero on the slack block),
//! `Σ` is the diagonal barrier term, and `J = [J_E 0; J_I I]` is the
//! Jacobian of the slacked constraints. The factorization of this matrix is
//! the dominant cost of the baseline — the very cost the paper's
//! decomposition avoids.

use gridsim_sparse::{Coo, Csc};

/// Dimensions of the slacked problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KktDims {
    /// Number of original decision variables.
    pub nx: usize,
    /// Number of inequality slacks.
    pub ns: usize,
    /// Number of equality constraints.
    pub m_eq: usize,
    /// Number of inequality constraints.
    pub m_ineq: usize,
}

impl KktDims {
    /// Total primal dimension `nx + ns`.
    pub fn nv(&self) -> usize {
        self.nx + self.ns
    }

    /// Total constraint dimension `m_eq + m_ineq`.
    pub fn mc(&self) -> usize {
        self.m_eq + self.m_ineq
    }

    /// Dimension of the augmented KKT matrix.
    pub fn dim(&self) -> usize {
        self.nv() + self.mc()
    }

    /// Expected pivot signs of the quasi-definite KKT matrix: `+1` on the
    /// primal block, `−1` on the constraint block. Used by the LDLᵀ
    /// regularization.
    pub fn expected_signs(&self) -> Vec<i8> {
        let mut signs = vec![1i8; self.nv()];
        signs.extend(std::iter::repeat_n(-1i8, self.mc()));
        signs
    }
}

/// Assemble the augmented KKT matrix.
///
/// * `hess` — Hessian of the Lagrangian over the `x` block (full symmetric
///   triplets),
/// * `sigma` — diagonal barrier term for every primal variable (length
///   `nv`),
/// * `jac_eq`, `jac_ineq` — constraint Jacobians over the `x` block,
/// * `delta_w`, `delta_c` — primal and dual regularization.
pub fn assemble_kkt(
    dims: &KktDims,
    hess: &Coo,
    sigma: &[f64],
    jac_eq: &Coo,
    jac_ineq: &Coo,
    delta_w: f64,
    delta_c: f64,
) -> Csc {
    let nv = dims.nv();
    let n = dims.dim();
    assert_eq!(sigma.len(), nv, "sigma must cover x and s blocks");
    assert_eq!(hess.nrows, dims.nx);
    assert_eq!(hess.ncols, dims.nx);
    assert_eq!(jac_eq.nrows, dims.m_eq);
    assert_eq!(jac_eq.ncols, dims.nx);
    assert_eq!(jac_ineq.nrows, dims.m_ineq);
    assert_eq!(jac_ineq.ncols, dims.nx);

    let nnz_estimate =
        hess.nnz() + nv + n + 2 * (jac_eq.nnz() + jac_ineq.nnz() + dims.ns) + dims.mc();
    let mut kkt = Coo::with_capacity(n, n, nnz_estimate);

    // Hessian of the Lagrangian on the x block.
    for k in 0..hess.nnz() {
        kkt.push(hess.rows[k], hess.cols[k], hess.vals[k]);
    }
    // Barrier diagonal and primal regularization.
    for (i, si) in sigma.iter().enumerate().take(nv) {
        kkt.push(i, i, si + delta_w);
    }
    // Equality Jacobian block.
    for k in 0..jac_eq.nnz() {
        let r = nv + jac_eq.rows[k];
        let c = jac_eq.cols[k];
        kkt.push(r, c, jac_eq.vals[k]);
        kkt.push(c, r, jac_eq.vals[k]);
    }
    // Inequality Jacobian block and the identity coupling to slacks.
    for k in 0..jac_ineq.nnz() {
        let r = nv + dims.m_eq + jac_ineq.rows[k];
        let c = jac_ineq.cols[k];
        kkt.push(r, c, jac_ineq.vals[k]);
        kkt.push(c, r, jac_ineq.vals[k]);
    }
    for k in 0..dims.ns {
        let r = nv + dims.m_eq + k;
        let c = dims.nx + k;
        kkt.push(r, c, 1.0);
        kkt.push(c, r, 1.0);
    }
    // Dual regularization.
    for i in 0..dims.mc() {
        kkt.push(nv + i, nv + i, -delta_c.max(1e-12));
    }
    kkt.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dims() -> KktDims {
        KktDims {
            nx: 2,
            ns: 1,
            m_eq: 1,
            m_ineq: 1,
        }
    }

    #[test]
    fn dims_arithmetic() {
        let d = small_dims();
        assert_eq!(d.nv(), 3);
        assert_eq!(d.mc(), 2);
        assert_eq!(d.dim(), 5);
        assert_eq!(d.expected_signs(), vec![1, 1, 1, -1, -1]);
    }

    #[test]
    fn assembled_matrix_is_symmetric_with_expected_blocks() {
        let d = small_dims();
        let mut hess = Coo::new(2, 2);
        hess.push(0, 0, 2.0);
        hess.push(1, 1, 4.0);
        hess.push(0, 1, 0.5);
        hess.push(1, 0, 0.5);
        let sigma = vec![0.1, 0.2, 0.3];
        let mut jac_eq = Coo::new(1, 2);
        jac_eq.push(0, 0, 1.0);
        jac_eq.push(0, 1, 1.0);
        let mut jac_ineq = Coo::new(1, 2);
        jac_ineq.push(0, 0, -3.0);
        let kkt = assemble_kkt(&d, &hess, &sigma, &jac_eq, &jac_ineq, 1e-8, 1e-8);
        assert_eq!(kkt.nrows, 5);
        let dense = kkt.to_dense();
        // Symmetry.
        for (i, row) in dense.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!((v - dense[j][i]).abs() < 1e-15);
            }
        }
        // Hessian + sigma + delta_w on the (0,0) entry.
        assert!((dense[0][0] - (2.0 + 0.1 + 1e-8)).abs() < 1e-12);
        // Slack diagonal has only sigma + delta_w.
        assert!((dense[2][2] - (0.3 + 1e-8)).abs() < 1e-12);
        // Equality Jacobian row.
        assert!((dense[3][0] - 1.0).abs() < 1e-15);
        assert!((dense[3][1] - 1.0).abs() < 1e-15);
        // Inequality row couples to x0 and the slack.
        assert!((dense[4][0] + 3.0).abs() < 1e-15);
        assert!((dense[4][2] - 1.0).abs() < 1e-15);
        // Dual regularization.
        assert!(dense[3][3] < 0.0);
        assert!(dense[4][4] < 0.0);
    }

    #[test]
    fn kkt_with_no_inequalities() {
        let d = KktDims {
            nx: 2,
            ns: 0,
            m_eq: 1,
            m_ineq: 0,
        };
        let mut hess = Coo::new(2, 2);
        hess.push(0, 0, 1.0);
        hess.push(1, 1, 1.0);
        let jac_eq = {
            let mut j = Coo::new(1, 2);
            j.push(0, 0, 1.0);
            j.push(0, 1, 2.0);
            j
        };
        let kkt = assemble_kkt(&d, &hess, &[0.0, 0.0], &jac_eq, &Coo::new(0, 2), 0.0, 1e-8);
        assert_eq!(kkt.nrows, 3);
        let dense = kkt.to_dense();
        assert!((dense[2][1] - 2.0).abs() < 1e-15);
    }
}
