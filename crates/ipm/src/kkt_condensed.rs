//! Condensed-space KKT solves with frozen-pattern numeric refactorization.
//!
//! The augmented KKT system of [`crate::kkt`] carries four blocks of
//! unknowns: primal variables `Δx`, inequality slacks `Δs`, equality duals
//! `Δλ_E`, and inequality duals `Δλ_I`. The slack and inequality-dual blocks
//! couple through *diagonal* matrices only, so they can be eliminated in
//! closed form (Shin et al., arXiv:2307.16830 — the condensed-space
//! interior-point step that makes each Newton solve GPU-friendly). With
//! `D_s = Σ_s + δ_w` and `δ_c′` the regularized dual shift, the remaining
//! quasi-definite system over the variable block and the equality duals is
//!
//! ```text
//! [ H + Σ_x + δ_w I + J_Iᵀ C J_I    J_Eᵀ   ] [Δx  ]   [ b_x − J_Iᵀ w ]
//! [ J_E                             −δ_c′ I ] [Δλ_E] = [ b_E          ]
//!
//!   C = D_s / (1 + δ_c′ D_s)          (diagonal)
//!   w = (b_s − D_s b_I) / (1 + δ_c′ D_s)
//! ```
//!
//! of dimension `nx + m_eq` instead of `nx + 2 m_ineq + m_eq` — exactly the
//! `nx×nx` variable-block system when no equality constraints are present.
//! The eliminated blocks are recovered exactly:
//!
//! ```text
//! Δs   = (b_I + δ_c′ b_s − J_I Δx) / (1 + δ_c′ D_s)
//! Δλ_I = b_s − D_s Δs
//! ```
//!
//! Because the elimination is exact, the condensed step equals the full-KKT
//! step up to floating-point roundoff; the two strategies agree to solver
//! tolerance (a tested invariant).
//!
//! The second half of the module is the *symbolic reuse* the condensed shape
//! unlocks: the condensed matrix has a fixed sparsity pattern across
//! interior-point iterations (only values change with the barrier, the
//! multipliers, and the inertia regularization δ_w), so [`KktCache`]
//! analyzes the pattern once per NLP — probing the model callbacks with unit
//! multipliers to harvest the full structural pattern — and every Newton
//! step runs a numeric-only [`gridsim_sparse::LdlSymbolic::refactor_on`]
//! whose per-row column updates fan out through
//! [`gridsim_batch::Device::launch_blocks`]. Warm-started re-solves of the
//! same network (rolling-horizon tracking) reuse the same cache across
//! periods, so a whole trajectory costs one symbolic analysis. If an
//! iteration ever produces a coordinate outside the frozen pattern (the
//! model callbacks prune numerically-zero triplets, so the pattern can grow
//! when a multiplier leaves zero), the cache rebuilds the union pattern and
//! counts another analysis — correctness never depends on the probe being
//! complete.

use crate::kkt::KktDims;
use gridsim_batch::Device;
use gridsim_sparse::{Coo, Csc, LdlFactor, LdlOptions, LdlSymbolic, SparseError};

/// Which linear-algebra path each Newton step takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KktStrategy {
    /// Assemble and factorize the full augmented KKT system from scratch
    /// every step (fresh symbolic analysis per factorization) — the paper's
    /// baseline cost anatomy.
    #[default]
    Full,
    /// Eliminate the slack and inequality-dual blocks to the condensed
    /// quasi-definite system and solve it with frozen-pattern numeric
    /// refactorization on the batch device.
    Condensed,
}

/// Outcome of one condensed factorize-and-solve attempt.
#[derive(Debug, Clone)]
pub struct CondensedStep {
    /// Newton step in the full layout `[Δx; Δs; Δλ_E; Δλ_I]` (identical to
    /// the full-KKT solution layout).
    pub step: Vec<f64>,
    /// Inertia `(positive, negative, zero)` of the condensed matrix. The
    /// expected inertia is `(nx, m_eq, 0)`; the eliminated blocks contribute
    /// a fixed `(m_ineq, m_ineq)` on top of it in the full system.
    pub inertia: (usize, usize, usize),
    /// Pivots the regularized LDLᵀ had to bump.
    pub num_regularized: usize,
}

/// A factorized condensed system whose triangular solve has not run yet, so
/// the inertia-correction loop can reject it (and escalate `δ_w`) without
/// paying the solve and the eliminated-block recovery.
#[derive(Debug, Clone)]
pub struct CondensedFactor {
    factor: LdlFactor,
    dims: KktDims,
    /// Diagonal elimination factors frozen at factorization time.
    ds: Vec<f64>,
    e: Vec<f64>,
    delta_cc: f64,
    /// Inertia `(positive, negative, zero)` of the condensed matrix.
    pub inertia: (usize, usize, usize),
    /// Pivots the regularized LDLᵀ had to bump.
    pub num_regularized: usize,
}

impl CondensedFactor {
    /// Solve for the full-layout Newton step `[Δx; Δs; Δλ_E; Δλ_I]`. `rhs`
    /// is the full augmented right-hand side `[b_x; b_s; b_E; b_I]` and
    /// `jac_ineq` must be the matrix the factorization was assembled from.
    pub fn solve(&self, jac_ineq: &Coo, rhs: &[f64]) -> Vec<f64> {
        let dims = &self.dims;
        assert_eq!(rhs.len(), dims.dim(), "rhs must cover the full system");
        let nx = dims.nx;
        let m_eq = dims.m_eq;
        let m_ineq = dims.m_ineq;
        let nv = dims.nv();
        let ncond = nx + m_eq;

        // Condensed right-hand side.
        let b_x = &rhs[..nx];
        let b_s = &rhs[nx..nv];
        let b_e = &rhs[nv..nv + m_eq];
        let b_i = &rhs[nv + m_eq..];
        let mut rc = vec![0.0; ncond];
        rc[..nx].copy_from_slice(b_x);
        let w: Vec<f64> = (0..m_ineq)
            .map(|r| (b_s[r] - self.ds[r] * b_i[r]) / self.e[r])
            .collect();
        for t in 0..jac_ineq.nnz() {
            rc[jac_ineq.cols[t]] -= jac_ineq.vals[t] * w[jac_ineq.rows[t]];
        }
        rc[nx..].copy_from_slice(b_e);

        let xc = self.factor.solve(&rc);

        // Recover the eliminated blocks exactly.
        let dx = &xc[..nx];
        let dlambda_e = &xc[nx..];
        let mut jx = vec![0.0; m_ineq];
        for t in 0..jac_ineq.nnz() {
            jx[jac_ineq.rows[t]] += jac_ineq.vals[t] * dx[jac_ineq.cols[t]];
        }
        let mut step = vec![0.0; dims.dim()];
        step[..nx].copy_from_slice(dx);
        for r in 0..m_ineq {
            let dsr = (b_i[r] + self.delta_cc * b_s[r] - jx[r]) / self.e[r];
            step[nx + r] = dsr;
            step[nv + m_eq + r] = b_s[r] - self.ds[r] * dsr;
        }
        step[nv..nv + m_eq].copy_from_slice(dlambda_e);
        step
    }
}

/// Frozen condensed structure: pattern, slot maps, and the reusable symbolic
/// factorization.
#[derive(Debug, Clone)]
struct CondensedStructure {
    dims: KktDims,
    ncond: usize,
    /// Slot of every diagonal entry `(i, i)`.
    diag_slots: Vec<usize>,
    /// Symbolic analysis of the frozen pattern; [`LdlSymbolic::pattern`] is
    /// the single copy of the full-symmetric CSC structure slot lookups run
    /// against.
    ldl: LdlSymbolic,
    /// Expected pivot signs: `+1` on the variable block, `−1` on the
    /// equality-dual block.
    signs: Vec<i8>,
}

/// Reusable condensed-KKT state: survives across Newton iterations of one
/// solve and across warm-started re-solves of structurally identical NLPs
/// (rolling-horizon tracking), so the symbolic analysis is paid once.
#[derive(Debug, Clone, Default)]
pub struct KktCache {
    structure: Option<CondensedStructure>,
    symbolic_analyses: usize,
    numeric_refactorizations: usize,
    /// The value slice and options of the most recent numeric
    /// refactorization, retained so [`Self::refactor_microbench`] can time
    /// the scalar-vs-supernodal replay on a genuine production matrix (the
    /// assembled values are owned here anyway once the factorization is
    /// done, so retention costs no copy).
    last_numeric: Option<(Vec<f64>, LdlOptions)>,
}

/// Scalar-vs-supernodal replay timing on the last condensed system a
/// [`KktCache`] factorized — the measured delta the `kkt_condensed` bench
/// records for the supernodal refactorization.
#[derive(Debug, Clone)]
pub struct RefactorMicrobench {
    /// Dimension of the condensed system.
    pub dim: usize,
    /// Supernodes the frozen `L` partitions into (equals `dim` when no
    /// columns group).
    pub supernodes: usize,
    /// Width of the widest supernode.
    pub max_supernode_width: usize,
    /// Total wall-clock of the timed scalar replays.
    pub scalar_time_s: f64,
    /// Total wall-clock of the timed supernodal replays (same repeat count).
    pub supernodal_time_s: f64,
    /// Whether the two replays produced bit-identical factors (they must).
    pub bitwise_identical: bool,
}

impl RefactorMicrobench {
    /// Scalar time over supernodal time (> 1 means the supernodal replay is
    /// faster).
    pub fn speedup(&self) -> f64 {
        self.scalar_time_s / self.supernodal_time_s
    }
}

impl KktCache {
    /// An empty cache (no analysis performed yet).
    pub fn new() -> KktCache {
        KktCache::default()
    }

    /// Symbolic analyses performed through this cache so far. One per NLP —
    /// or per *family* of NLPs sharing a structure, when the cache is reused
    /// across tracking periods — plus one per structural growth event.
    pub fn symbolic_analyses(&self) -> usize {
        self.symbolic_analyses
    }

    /// Numeric-only refactorizations performed through this cache.
    pub fn numeric_refactorizations(&self) -> usize {
        self.numeric_refactorizations
    }

    /// Make sure the frozen structure covers the given (probe) matrices.
    /// Call once per solve with unit multipliers so value-pruned triplets
    /// are all present; a no-op when the cached pattern already covers them.
    pub fn ensure_structure(&mut self, dims: &KktDims, hess: &Coo, jac_eq: &Coo, jac_ineq: &Coo) {
        if let Some(s) = &self.structure {
            if s.dims == *dims && s.covers(hess, jac_eq, jac_ineq) {
                return;
            }
        }
        self.rebuild(dims, hess, jac_eq, jac_ineq);
    }

    /// Rebuild the frozen pattern as the union of the previous pattern (when
    /// the dimensions still match) and the coordinates required by the given
    /// matrices, then re-analyze. Counts one symbolic analysis.
    fn rebuild(&mut self, dims: &KktDims, hess: &Coo, jac_eq: &Coo, jac_ineq: &Coo) {
        let ncond = dims.nx + dims.m_eq;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        // Carry the previous pattern forward so alternating activity cannot
        // thrash the analysis.
        if let Some(s) = &self.structure {
            if s.dims == *dims {
                let (colptr, rowind) = s.ldl.pattern();
                for j in 0..s.ncond {
                    for &r in &rowind[colptr[j]..colptr[j + 1]] {
                        rows.push(r);
                        cols.push(j);
                    }
                }
            }
        }
        // Every diagonal entry exists (barrier + regularization on the
        // variable block, −δ_c′ on the equality-dual block).
        for i in 0..ncond {
            rows.push(i);
            cols.push(i);
        }
        for t in 0..hess.nnz() {
            rows.push(hess.rows[t]);
            cols.push(hess.cols[t]);
        }
        for t in 0..jac_eq.nnz() {
            let (r, c) = (dims.nx + jac_eq.rows[t], jac_eq.cols[t]);
            rows.push(r);
            cols.push(c);
            rows.push(c);
            cols.push(r);
        }
        // J_Iᵀ C J_I couples every pair of variables that share an
        // inequality row.
        let by_row = group_by_row(jac_ineq, dims.m_ineq);
        for entries in &by_row {
            for &(cp, _) in entries {
                for &(cq, _) in entries {
                    rows.push(cp);
                    cols.push(cq);
                }
            }
        }
        let vals = vec![0.0; rows.len()];
        let pattern = Csc::from_triplets(ncond, ncond, &rows, &cols, &vals);
        let diag_slots: Vec<usize> = (0..ncond)
            .map(|i| slot(&pattern.colptr, &pattern.rowind, i, i).expect("diagonal in pattern"))
            .collect();
        let ldl = LdlSymbolic::analyze_rcm(&pattern).expect("condensed pattern analyzes");
        let mut signs = vec![1i8; dims.nx];
        signs.extend(std::iter::repeat_n(-1i8, dims.m_eq));
        self.structure = Some(CondensedStructure {
            dims: *dims,
            ncond,
            diag_slots,
            ldl,
            signs,
        });
        self.symbolic_analyses += 1;
    }

    /// Factorize the condensed system for the given iteration data. The
    /// triangular solve is deferred to [`CondensedFactor::solve`] so an
    /// inertia rejection costs only the (numeric-only) refactorization.
    #[allow(clippy::too_many_arguments)]
    pub fn factorize_condensed(
        &mut self,
        device: &Device,
        dims: &KktDims,
        hess: &Coo,
        sigma: &[f64],
        jac_eq: &Coo,
        jac_ineq: &Coo,
        delta_w: f64,
        delta_c: f64,
        pivot_tol: f64,
        pivot_reg: f64,
    ) -> Result<CondensedFactor, SparseError> {
        assert_eq!(sigma.len(), dims.nv(), "sigma must cover x and s blocks");
        assert_eq!(dims.ns, dims.m_ineq, "one slack per inequality");
        // Only the cheap dims check here: a full `covers` sweep per Newton
        // attempt would duplicate the slot lookups `try_assemble` performs
        // anyway, and its `None` → rebuild fallback already handles any
        // coordinate outside the frozen pattern.
        let needs_build = match &self.structure {
            Some(s) => s.dims != *dims,
            None => true,
        };
        if needs_build {
            self.rebuild(dims, hess, jac_eq, jac_ineq);
        }

        let delta_cc = delta_c.max(1e-12);
        let nx = dims.nx;
        let m_ineq = dims.m_ineq;

        // Per-inequality diagonal elimination factors.
        let ds: Vec<f64> = (0..m_ineq).map(|r| sigma[nx + r] + delta_w).collect();
        let e: Vec<f64> = ds.iter().map(|d| 1.0 + delta_cc * d).collect();

        // Assemble values into the frozen pattern; if a coordinate falls
        // outside it (a multiplier left zero and grew the model pattern),
        // rebuild the union structure once and assemble again.
        let by_row = group_by_row(jac_ineq, m_ineq);
        let vals = match self.try_assemble(hess, sigma, jac_eq, &by_row, &ds, &e, delta_w, delta_cc)
        {
            Some(v) => v,
            None => {
                self.rebuild(dims, hess, jac_eq, jac_ineq);
                self.try_assemble(hess, sigma, jac_eq, &by_row, &ds, &e, delta_w, delta_cc)
                    .expect("pattern covers its own rebuild inputs")
            }
        };
        let s = self.structure.as_ref().expect("structure ensured above");

        // Numeric-only refactorization over the frozen pattern, with the
        // per-row updates fanned out through the batch device.
        let opts = LdlOptions {
            pivot_tol,
            pivot_reg,
            expected_signs: s.signs.clone(),
        };
        let factor = s.ldl.refactor_on(device, &vals, &opts)?;
        self.numeric_refactorizations += 1;
        self.last_numeric = Some((vals, opts));
        let inertia = factor.inertia();
        let num_regularized = factor.num_regularized;
        Ok(CondensedFactor {
            factor,
            dims: *dims,
            ds,
            e,
            delta_cc,
            inertia,
            num_regularized,
        })
    }

    /// One-shot convenience: factorize the condensed system and solve for
    /// the full-layout Newton step. `rhs` is the full augmented right-hand
    /// side `[b_x; b_s; b_E; b_I]` exactly as assembled for the full-KKT
    /// path.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_condensed(
        &mut self,
        device: &Device,
        dims: &KktDims,
        hess: &Coo,
        sigma: &[f64],
        jac_eq: &Coo,
        jac_ineq: &Coo,
        delta_w: f64,
        delta_c: f64,
        rhs: &[f64],
        pivot_tol: f64,
        pivot_reg: f64,
    ) -> Result<CondensedStep, SparseError> {
        let factor = self.factorize_condensed(
            device, dims, hess, sigma, jac_eq, jac_ineq, delta_w, delta_c, pivot_tol, pivot_reg,
        )?;
        Ok(CondensedStep {
            step: factor.solve(jac_ineq, rhs),
            inertia: factor.inertia,
            num_regularized: factor.num_regularized,
        })
    }

    /// Scatter the iteration values into the frozen pattern. Returns `None`
    /// when a coordinate is missing from the pattern.
    #[allow(clippy::too_many_arguments)]
    fn try_assemble(
        &self,
        hess: &Coo,
        sigma: &[f64],
        jac_eq: &Coo,
        ji_by_row: &[Vec<(usize, f64)>],
        ds: &[f64],
        e: &[f64],
        delta_w: f64,
        delta_cc: f64,
    ) -> Option<Vec<f64>> {
        let s = self.structure.as_ref()?;
        let nx = s.dims.nx;
        let (colptr, rowind) = s.ldl.pattern();
        let mut vals = vec![0.0; s.ldl.nnz()];
        for t in 0..hess.nnz() {
            let k = slot(colptr, rowind, hess.rows[t], hess.cols[t])?;
            vals[k] += hess.vals[t];
        }
        for (i, &sig) in sigma.iter().enumerate().take(nx) {
            vals[s.diag_slots[i]] += sig + delta_w;
        }
        for t in 0..jac_eq.nnz() {
            let (r, c) = (nx + jac_eq.rows[t], jac_eq.cols[t]);
            vals[slot(colptr, rowind, r, c)?] += jac_eq.vals[t];
            vals[slot(colptr, rowind, c, r)?] += jac_eq.vals[t];
        }
        for i in 0..s.dims.m_eq {
            vals[s.diag_slots[nx + i]] += -delta_cc;
        }
        // J_Iᵀ C J_I, one inequality row at a time; pairs are written
        // symmetrically with the same product so the assembled matrix is
        // exactly symmetric.
        for (r, entries) in ji_by_row.iter().enumerate() {
            let c_r = ds[r] / e[r];
            for (p, &(cp, vp)) in entries.iter().enumerate() {
                for &(cq, vq) in &entries[p..] {
                    let v = (vp * c_r) * vq;
                    vals[slot(colptr, rowind, cp, cq)?] += v;
                    if cp != cq {
                        vals[slot(colptr, rowind, cq, cp)?] += v;
                    }
                }
            }
        }
        Some(vals)
    }

    /// Time the scalar vs supernodal numeric replay on the most recently
    /// factorized condensed system, `repeats` refactorizations each, and
    /// verify the two produce bit-identical factors. Returns `None` before
    /// the first factorization. Host-side timing by design: it isolates the
    /// replay kernels from the launch fan-out so the recorded delta is the
    /// supernodal grouping itself.
    pub fn refactor_microbench(&self, repeats: usize) -> Option<RefactorMicrobench> {
        let s = self.structure.as_ref()?;
        let (vals, opts) = self.last_numeric.as_ref()?;
        let scalar = s.ldl.refactor(vals, opts).ok()?;
        let supernodal = s.ldl.refactor_supernodal(vals, opts).ok()?;
        let bits = |f: &LdlFactor| {
            f.l_values()
                .iter()
                .chain(f.d_values())
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        let bitwise_identical = bits(&scalar) == bits(&supernodal);
        let start = std::time::Instant::now();
        for _ in 0..repeats {
            std::hint::black_box(s.ldl.refactor(vals, opts).ok()?);
        }
        let scalar_time_s = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        for _ in 0..repeats {
            std::hint::black_box(s.ldl.refactor_supernodal(vals, opts).ok()?);
        }
        let supernodal_time_s = start.elapsed().as_secs_f64();
        Some(RefactorMicrobench {
            dim: s.ncond,
            supernodes: s.ldl.num_supernodes(),
            max_supernode_width: s.ldl.max_supernode_width(),
            scalar_time_s,
            supernodal_time_s,
            bitwise_identical,
        })
    }
}

impl CondensedStructure {
    /// True when every coordinate the given matrices touch is present in the
    /// frozen pattern.
    fn covers(&self, hess: &Coo, jac_eq: &Coo, jac_ineq: &Coo) -> bool {
        let nx = self.dims.nx;
        let (colptr, rowind) = self.ldl.pattern();
        for t in 0..hess.nnz() {
            if slot(colptr, rowind, hess.rows[t], hess.cols[t]).is_none() {
                return false;
            }
        }
        for t in 0..jac_eq.nnz() {
            let (r, c) = (nx + jac_eq.rows[t], jac_eq.cols[t]);
            if slot(colptr, rowind, r, c).is_none() || slot(colptr, rowind, c, r).is_none() {
                return false;
            }
        }
        let by_row = group_by_row(jac_ineq, self.dims.m_ineq);
        for entries in &by_row {
            for &(cp, _) in entries {
                for &(cq, _) in entries {
                    if slot(colptr, rowind, cp, cq).is_none() {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Position of entry `(row, col)` in a CSC pattern, if present.
fn slot(colptr: &[usize], rowind: &[usize], row: usize, col: usize) -> Option<usize> {
    if col + 1 >= colptr.len() {
        return None;
    }
    let lo = colptr[col];
    let hi = colptr[col + 1];
    rowind[lo..hi].binary_search(&row).ok().map(|off| lo + off)
}

/// Group a COO matrix's entries by row, summing duplicate columns within a
/// row and sorting by column (deterministic assembly order). Duplicates must
/// be combined *before* the quadratic `J_Iᵀ C J_I` products — the full-KKT
/// path sums them linearly during CSC conversion, and `(v₁+v₂)²` is not
/// `v₁² + v₁v₂ + v₂²`.
fn group_by_row(a: &Coo, nrows: usize) -> Vec<Vec<(usize, f64)>> {
    let mut by_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nrows];
    for t in 0..a.nnz() {
        by_row[a.rows[t]].push((a.cols[t], a.vals[t]));
    }
    for entries in &mut by_row {
        entries.sort_by_key(|&(c, _)| c);
        entries.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 += next.1;
                true
            } else {
                false
            }
        });
    }
    by_row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kkt::assemble_kkt;
    use gridsim_sparse::LdlFactor;

    /// A small slacked problem: nx = 3, one equality, two inequalities.
    fn small_dims() -> KktDims {
        KktDims {
            nx: 3,
            ns: 2,
            m_eq: 1,
            m_ineq: 2,
        }
    }

    fn small_problem() -> (Coo, Vec<f64>, Coo, Coo) {
        let mut hess = Coo::new(3, 3);
        hess.push(0, 0, 4.0);
        hess.push(1, 1, 3.0);
        hess.push(2, 2, 5.0);
        hess.push(0, 1, 0.5);
        hess.push(1, 0, 0.5);
        let sigma = vec![0.3, 0.2, 0.1, 0.7, 0.9];
        let mut jac_eq = Coo::new(1, 3);
        jac_eq.push(0, 0, 1.0);
        jac_eq.push(0, 2, -1.0);
        let mut jac_ineq = Coo::new(2, 3);
        jac_ineq.push(0, 0, 2.0);
        jac_ineq.push(0, 1, -1.0);
        jac_ineq.push(1, 1, 1.5);
        jac_ineq.push(1, 2, 0.4);
        (hess, sigma, jac_eq, jac_ineq)
    }

    #[test]
    fn condensed_step_matches_full_kkt_solve() {
        let dims = small_dims();
        let (hess, sigma, jac_eq, jac_ineq) = small_problem();
        let (delta_w, delta_c) = (1e-6, 1e-8);
        let rhs: Vec<f64> = (0..dims.dim()).map(|i| (i as f64 * 0.7).sin()).collect();

        let kkt = assemble_kkt(&dims, &hess, &sigma, &jac_eq, &jac_ineq, delta_w, delta_c);
        let opts = LdlOptions {
            expected_signs: dims.expected_signs(),
            pivot_tol: 1e-13,
            pivot_reg: 1e-9,
        };
        let full = LdlFactor::factorize_rcm(&kkt, &opts).unwrap().solve(&rhs);

        let mut cache = KktCache::new();
        let cond = cache
            .solve_condensed(
                &Device::parallel(),
                &dims,
                &hess,
                &sigma,
                &jac_eq,
                &jac_ineq,
                delta_w,
                delta_c,
                &rhs,
                1e-13,
                1e-9,
            )
            .unwrap();
        let scale = full.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in full.iter().zip(&cond.step) {
            assert!(
                (a - b).abs() < 1e-9 * scale,
                "full {a} vs condensed {b} (scale {scale})"
            );
        }
        // Expected inertia of the condensed system: (nx, m_eq, 0).
        assert_eq!(cond.inertia, (3, 1, 0));
        assert_eq!(cond.num_regularized, 0);
        assert_eq!(cache.symbolic_analyses(), 1);
        assert_eq!(cache.numeric_refactorizations(), 1);
    }

    /// The condensed path is bitwise identical across every launch
    /// backend: the device-side product assembly and level-scheduled
    /// refactorization must not depend on the iteration scheme.
    #[test]
    fn condensed_step_is_bitwise_identical_across_backends() {
        let dims = small_dims();
        let (hess, sigma, jac_eq, jac_ineq) = small_problem();
        let rhs: Vec<f64> = (0..dims.dim()).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut cache = KktCache::new();
        let reference = cache
            .solve_condensed(
                &Device::sequential(),
                &dims,
                &hess,
                &sigma,
                &jac_eq,
                &jac_ineq,
                1e-6,
                1e-8,
                &rhs,
                1e-13,
                1e-9,
            )
            .unwrap();
        for dev in [Device::parallel(), Device::vectorized()] {
            let mut cache = KktCache::new();
            let cond = cache
                .solve_condensed(
                    &dev, &dims, &hess, &sigma, &jac_eq, &jac_ineq, 1e-6, 1e-8, &rhs, 1e-13, 1e-9,
                )
                .unwrap();
            for (a, b) in reference.step.iter().zip(&cond.step) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} diverged", dev.backend());
            }
            assert_eq!(cond.inertia, reference.inertia);
        }
    }

    #[test]
    fn repeated_solves_reuse_one_symbolic_analysis() {
        let dims = small_dims();
        let (hess, sigma, jac_eq, jac_ineq) = small_problem();
        let mut cache = KktCache::new();
        let device = Device::sequential();
        let rhs = vec![1.0; dims.dim()];
        for k in 0..5 {
            let delta_w = 1e-8 * (k as f64 + 1.0);
            cache
                .solve_condensed(
                    &device, &dims, &hess, &sigma, &jac_eq, &jac_ineq, delta_w, 1e-8, &rhs, 1e-13,
                    1e-9,
                )
                .unwrap();
        }
        assert_eq!(cache.symbolic_analyses(), 1);
        assert_eq!(cache.numeric_refactorizations(), 5);
    }

    #[test]
    fn pattern_growth_rebuilds_union_structure_once() {
        let dims = small_dims();
        let (hess, sigma, jac_eq, jac_ineq) = small_problem();
        let mut cache = KktCache::new();
        let device = Device::sequential();
        let rhs = vec![1.0; dims.dim()];
        // Seed the structure from a pruned Hessian (as a cold start with zero
        // multipliers would produce).
        let mut pruned = Coo::new(3, 3);
        pruned.push(0, 0, 4.0);
        pruned.push(1, 1, 3.0);
        pruned.push(2, 2, 5.0);
        cache
            .solve_condensed(
                &device, &dims, &pruned, &sigma, &jac_eq, &jac_ineq, 0.0, 1e-8, &rhs, 1e-13, 1e-9,
            )
            .unwrap();
        assert_eq!(cache.symbolic_analyses(), 1);
        // A Hessian coupling no inequality row shares — (0,2)/(2,0) — grows
        // the pattern: one rebuild. (The (0,1) coupling of the standard
        // Hessian is already covered by inequality row 0's product block.)
        let mut hess = hess;
        hess.push(0, 2, 0.25);
        hess.push(2, 0, 0.25);
        cache
            .solve_condensed(
                &device, &dims, &hess, &sigma, &jac_eq, &jac_ineq, 0.0, 1e-8, &rhs, 1e-13, 1e-9,
            )
            .unwrap();
        assert_eq!(cache.symbolic_analyses(), 2);
        // And the union pattern keeps covering the pruned shape afterwards.
        cache
            .solve_condensed(
                &device, &dims, &pruned, &sigma, &jac_eq, &jac_ineq, 0.0, 1e-8, &rhs, 1e-13, 1e-9,
            )
            .unwrap();
        assert_eq!(cache.symbolic_analyses(), 2);
    }

    #[test]
    fn duplicate_jacobian_triplets_match_the_full_path() {
        // The same (row, col) appearing twice in the inequality Jacobian is
        // legal COO — the full path sums the duplicates during CSC
        // conversion, so the condensed product must square the *sum*, not
        // sum the squares.
        let dims = KktDims {
            nx: 2,
            ns: 1,
            m_eq: 0,
            m_ineq: 1,
        };
        let mut hess = Coo::new(2, 2);
        hess.push(0, 0, 3.0);
        hess.push(1, 1, 2.0);
        let sigma = vec![0.4, 0.6, 0.5];
        let jac_eq = Coo::new(0, 2);
        let mut jac_ineq = Coo::new(1, 2);
        jac_ineq.push(0, 0, 2.0);
        jac_ineq.push(0, 0, 1.0); // duplicate of (0, 0): effective value 3.0
        jac_ineq.push(0, 1, -1.0);
        let rhs: Vec<f64> = (0..dims.dim()).map(|i| 1.0 + 0.5 * i as f64).collect();

        let kkt = assemble_kkt(&dims, &hess, &sigma, &jac_eq, &jac_ineq, 0.0, 1e-8);
        let opts = LdlOptions {
            expected_signs: dims.expected_signs(),
            pivot_tol: 1e-13,
            pivot_reg: 1e-9,
        };
        let full = LdlFactor::factorize_rcm(&kkt, &opts).unwrap().solve(&rhs);
        let mut cache = KktCache::new();
        let cond = cache
            .solve_condensed(
                &Device::sequential(),
                &dims,
                &hess,
                &sigma,
                &jac_eq,
                &jac_ineq,
                0.0,
                1e-8,
                &rhs,
                1e-13,
                1e-9,
            )
            .unwrap();
        for (a, b) in full.iter().zip(&cond.step) {
            assert!((a - b).abs() < 1e-9, "full {a} vs condensed {b}");
        }
    }

    #[test]
    fn no_equality_constraints_condenses_to_the_variable_block() {
        let dims = KktDims {
            nx: 2,
            ns: 1,
            m_eq: 0,
            m_ineq: 1,
        };
        let mut hess = Coo::new(2, 2);
        hess.push(0, 0, 2.0);
        hess.push(1, 1, 2.0);
        let sigma = vec![0.5, 0.4, 0.8];
        let jac_eq = Coo::new(0, 2);
        let mut jac_ineq = Coo::new(1, 2);
        jac_ineq.push(0, 0, -1.0);
        jac_ineq.push(0, 1, -1.0);
        let rhs: Vec<f64> = (0..dims.dim()).map(|i| 0.3 + i as f64).collect();

        let kkt = assemble_kkt(&dims, &hess, &sigma, &jac_eq, &jac_ineq, 0.0, 1e-8);
        let opts = LdlOptions {
            expected_signs: dims.expected_signs(),
            pivot_tol: 1e-13,
            pivot_reg: 1e-9,
        };
        let full = LdlFactor::factorize_rcm(&kkt, &opts).unwrap().solve(&rhs);
        let mut cache = KktCache::new();
        let cond = cache
            .solve_condensed(
                &Device::parallel(),
                &dims,
                &hess,
                &sigma,
                &jac_eq,
                &jac_ineq,
                0.0,
                1e-8,
                &rhs,
                1e-13,
                1e-9,
            )
            .unwrap();
        // nx×nx positive definite system.
        assert_eq!(cond.inertia, (2, 0, 0));
        for (a, b) in full.iter().zip(&cond.step) {
            assert!((a - b).abs() < 1e-9, "full {a} vs condensed {b}");
        }
    }
}
