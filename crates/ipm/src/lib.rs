//! # gridsim-ipm
//!
//! A primal–dual interior-point method for smooth nonlinear programs, serving
//! as the centralized baseline the paper compares against (Ipopt + MA57 via
//! PowerModels.jl).
//!
//! The method follows the standard barrier scheme: inequality constraints are
//! slacked into equalities, variable bounds are handled with logarithmic
//! barrier terms, and each barrier subproblem is solved with Newton steps on
//! the primal–dual KKT system. The augmented (quasi-definite) KKT matrix is
//! factorized with the sparse LDLᵀ of [`gridsim_sparse`] using a
//! reverse Cuthill–McKee ordering, inertia is corrected by primal/dual
//! regularization, steps are safeguarded by the fraction-to-boundary rule and
//! an ℓ1-merit backtracking line search, and the barrier parameter decreases
//! monotonically (Fiacco–McCormick).
//!
//! The cost anatomy — one sparse symmetric indefinite factorization per
//! Newton iteration, growing super-linearly with network size — is exactly
//! the baseline behaviour the paper's Table II and Figure 1 contrast against.
//! The [`kkt_condensed`] module is the counterpoint: a condensed-space step
//! (slack and inequality-dual blocks eliminated in closed form) whose frozen
//! sparsity pattern is analyzed once per NLP and numerically refactorized on
//! the batch device every iteration, selected through
//! [`kkt_condensed::KktStrategy`].
//!
//! Modules:
//!
//! * [`nlp`] — the problem interface ([`nlp::Nlp`]),
//! * [`acopf_nlp`] — the full polar ACOPF formulation (1) as an NLP,
//! * [`kkt`] — assembly of the augmented KKT system,
//! * [`kkt_condensed`] — the condensed-space step with symbolic reuse,
//! * [`solver`] — the interior-point iteration,
//! * [`fleet`] — the scenario fleet driver on the execution engine (one
//!   warm-start chain and one [`KktCache`] per lane),
//! * [`report`] — iteration log and result types.

pub mod acopf_nlp;
pub mod fleet;
pub mod kkt;
pub mod kkt_condensed;
pub mod nlp;
pub mod report;
pub mod solver;

pub use acopf_nlp::AcopfNlp;
pub use fleet::{FleetReport, FleetScenarioResult, IpmFleetSolver, IpmWarmStart};
pub use kkt_condensed::{KktCache, KktStrategy, RefactorMicrobench};
pub use nlp::Nlp;
pub use report::{IpmStatus, IterationRecord, SolveReport};
pub use solver::{IpmOptions, IpmSolver};
