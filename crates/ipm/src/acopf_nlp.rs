//! The full polar ACOPF formulation (1) as a smooth NLP.
//!
//! This is the formulation the paper hands to Ipopt through PowerModels.jl
//! (with the automatic angle-difference tightening disabled, as described in
//! Section IV-A). Variables are bus voltage angles and magnitudes plus
//! generator dispatch:
//!
//! ```text
//! x = [ va (nbus) | vm (nbus) | pg (ngen) | qg (ngen) ]
//! ```
//!
//! Equality constraints: real and reactive power balance at every bus plus
//! the reference-angle anchor. Inequality constraints: squared apparent-power
//! line limits at both ends of every rated branch.

use crate::nlp::Nlp;
use gridsim_acopf::flows::{BranchFlow, FlowGrad, FlowKind};
use gridsim_acopf::solution::OpfSolution;
use gridsim_acopf::start::cold_start;
use gridsim_grid::network::Network;
use gridsim_sparse::Coo;

/// The ACOPF NLP over a compiled [`Network`].
#[derive(Debug, Clone)]
pub struct AcopfNlp<'a> {
    net: &'a Network,
    /// Branches with a finite thermal rating (only these get limit
    /// constraints).
    limited: Vec<usize>,
    /// Optional override of the generator real-power bounds (used by the
    /// warm-start tracking experiment to impose ramp limits).
    pg_bounds: Option<(Vec<f64>, Vec<f64>)>,
    /// Optional override of the starting point.
    start: Option<OpfSolution>,
}

impl<'a> AcopfNlp<'a> {
    /// Build the NLP for a network.
    pub fn new(net: &'a Network) -> Self {
        let limited = (0..net.nbranch)
            .filter(|&l| net.rate_a[l].is_finite())
            .collect();
        AcopfNlp {
            net,
            limited,
            pg_bounds: None,
            start: None,
        }
    }

    /// Override the generator real-power bounds (ramp-limited tracking).
    pub fn with_pg_bounds(mut self, pmin: Vec<f64>, pmax: Vec<f64>) -> Self {
        assert_eq!(pmin.len(), self.net.ngen);
        assert_eq!(pmax.len(), self.net.ngen);
        self.pg_bounds = Some((pmin, pmax));
        self
    }

    /// Override the starting point (warm start).
    pub fn with_start(mut self, start: OpfSolution) -> Self {
        self.start = Some(start);
        self
    }

    /// The network this NLP was built from.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// Number of line-limit constraints (two per rated branch).
    pub fn num_line_limits(&self) -> usize {
        2 * self.limited.len()
    }

    #[inline]
    fn va_idx(&self, b: usize) -> usize {
        b
    }
    #[inline]
    fn vm_idx(&self, b: usize) -> usize {
        self.net.nbus + b
    }
    #[inline]
    fn pg_idx(&self, g: usize) -> usize {
        2 * self.net.nbus + g
    }
    #[inline]
    fn qg_idx(&self, g: usize) -> usize {
        2 * self.net.nbus + self.net.ngen + g
    }

    /// Branch-variable global indices in the flow-derivative order
    /// `(v_i, v_j, θ_i, θ_j)`.
    #[inline]
    fn branch_var_indices(&self, l: usize) -> [usize; 4] {
        let f = self.net.br_from[l];
        let t = self.net.br_to[l];
        [
            self.vm_idx(f),
            self.vm_idx(t),
            self.va_idx(f),
            self.va_idx(t),
        ]
    }

    #[inline]
    fn branch_state(&self, x: &[f64], l: usize) -> (f64, f64, f64, f64) {
        let f = self.net.br_from[l];
        let t = self.net.br_to[l];
        (
            x[self.vm_idx(f)],
            x[self.vm_idx(t)],
            x[self.va_idx(f)],
            x[self.va_idx(t)],
        )
    }

    /// Convert a raw solver vector into an [`OpfSolution`].
    pub fn to_solution(&self, x: &[f64]) -> OpfSolution {
        let n = self.net;
        OpfSolution {
            va: x[..n.nbus].to_vec(),
            vm: x[n.nbus..2 * n.nbus].to_vec(),
            pg: (0..n.ngen).map(|g| x[self.pg_idx(g)]).collect(),
            qg: (0..n.ngen).map(|g| x[self.qg_idx(g)]).collect(),
        }
    }

    /// Flatten an [`OpfSolution`] into the solver's variable order.
    pub fn from_solution(&self, sol: &OpfSolution) -> Vec<f64> {
        let n = self.net;
        let mut x = vec![0.0; self.num_vars()];
        x[..n.nbus].copy_from_slice(&sol.va);
        x[n.nbus..2 * n.nbus].copy_from_slice(&sol.vm);
        for g in 0..n.ngen {
            x[self.pg_idx(g)] = sol.pg[g];
            x[self.qg_idx(g)] = sol.qg[g];
        }
        x
    }

    fn flow_grad(grad: &FlowGrad) -> [f64; 4] {
        [grad.dvi, grad.dvj, grad.dti, grad.dtj]
    }
}

impl Nlp for AcopfNlp<'_> {
    fn num_vars(&self) -> usize {
        2 * self.net.nbus + 2 * self.net.ngen
    }

    fn num_eq(&self) -> usize {
        2 * self.net.nbus + 1
    }

    fn num_ineq(&self) -> usize {
        self.num_line_limits()
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.net;
        let mut lo = Vec::with_capacity(self.num_vars());
        let mut hi = Vec::with_capacity(self.num_vars());
        // Angles: formulation (1h).
        let two_pi = 2.0 * std::f64::consts::PI;
        lo.extend(std::iter::repeat_n(-two_pi, n.nbus));
        hi.extend(std::iter::repeat_n(two_pi, n.nbus));
        // Magnitudes.
        lo.extend_from_slice(&n.vmin);
        hi.extend_from_slice(&n.vmax);
        // Dispatch.
        let (pmin, pmax) = match &self.pg_bounds {
            Some((lo_pg, hi_pg)) => (lo_pg.clone(), hi_pg.clone()),
            None => (n.pmin.clone(), n.pmax.clone()),
        };
        lo.extend_from_slice(&pmin);
        hi.extend_from_slice(&pmax);
        lo.extend_from_slice(&n.qmin);
        hi.extend_from_slice(&n.qmax);
        (lo, hi)
    }

    fn initial_point(&self) -> Vec<f64> {
        let start = self.start.clone().unwrap_or_else(|| cold_start(self.net));
        self.from_solution(&start)
    }

    fn objective(&self, x: &[f64]) -> f64 {
        let n = self.net;
        (0..n.ngen)
            .map(|g| {
                let pg = x[self.pg_idx(g)];
                (n.cost_c2[g] * pg + n.cost_c1[g]) * pg + n.cost_c0[g]
            })
            .sum()
    }

    fn objective_grad(&self, x: &[f64], grad: &mut [f64]) {
        grad.fill(0.0);
        let n = self.net;
        for g in 0..n.ngen {
            let pg = x[self.pg_idx(g)];
            grad[self.pg_idx(g)] = 2.0 * n.cost_c2[g] * pg + n.cost_c1[g];
        }
    }

    fn eq_constraints(&self, x: &[f64], c: &mut [f64]) {
        let n = self.net;
        // Initialize with load, shunt and generation.
        for b in 0..n.nbus {
            let vm = x[self.vm_idx(b)];
            c[b] = -n.pd[b] - n.gs[b] * vm * vm;
            c[n.nbus + b] = -n.qd[b] + n.bs[b] * vm * vm;
        }
        for g in 0..n.ngen {
            let b = n.gen_bus[g];
            c[b] += x[self.pg_idx(g)];
            c[n.nbus + b] += x[self.qg_idx(g)];
        }
        // Subtract branch flows leaving each bus.
        for l in 0..n.nbranch {
            let (vi, vj, ti, tj) = self.branch_state(x, l);
            let y = &n.br_y[l];
            let f = n.br_from[l];
            let t = n.br_to[l];
            let pij = BranchFlow::from_admittance(y, FlowKind::Pij).value(vi, vj, ti, tj);
            let qij = BranchFlow::from_admittance(y, FlowKind::Qij).value(vi, vj, ti, tj);
            let pji = BranchFlow::from_admittance(y, FlowKind::Pji).value(vi, vj, ti, tj);
            let qji = BranchFlow::from_admittance(y, FlowKind::Qji).value(vi, vj, ti, tj);
            c[f] -= pij;
            c[n.nbus + f] -= qij;
            c[t] -= pji;
            c[n.nbus + t] -= qji;
        }
        // Reference-angle anchor.
        c[2 * n.nbus] = x[self.va_idx(n.ref_bus)];
    }

    fn ineq_constraints(&self, x: &[f64], c: &mut [f64]) {
        let n = self.net;
        for (k, &l) in self.limited.iter().enumerate() {
            let (vi, vj, ti, tj) = self.branch_state(x, l);
            let y = &n.br_y[l];
            let limit = n.rate_a[l] * n.rate_a[l];
            let pij = BranchFlow::from_admittance(y, FlowKind::Pij).value(vi, vj, ti, tj);
            let qij = BranchFlow::from_admittance(y, FlowKind::Qij).value(vi, vj, ti, tj);
            let pji = BranchFlow::from_admittance(y, FlowKind::Pji).value(vi, vj, ti, tj);
            let qji = BranchFlow::from_admittance(y, FlowKind::Qji).value(vi, vj, ti, tj);
            c[2 * k] = pij * pij + qij * qij - limit;
            c[2 * k + 1] = pji * pji + qji * qji - limit;
        }
    }

    fn eq_jacobian(&self, x: &[f64]) -> Coo {
        let n = self.net;
        let mut jac = Coo::with_capacity(
            self.num_eq(),
            self.num_vars(),
            16 * n.nbranch + 4 * n.ngen + 2 * n.nbus + 1,
        );
        // Shunt terms.
        for b in 0..n.nbus {
            let vm = x[self.vm_idx(b)];
            if n.gs[b] != 0.0 {
                jac.push(b, self.vm_idx(b), -2.0 * n.gs[b] * vm);
            }
            if n.bs[b] != 0.0 {
                jac.push(n.nbus + b, self.vm_idx(b), 2.0 * n.bs[b] * vm);
            }
        }
        // Generator injections.
        for g in 0..n.ngen {
            let b = n.gen_bus[g];
            jac.push(b, self.pg_idx(g), 1.0);
            jac.push(n.nbus + b, self.qg_idx(g), 1.0);
        }
        // Branch flows.
        for l in 0..n.nbranch {
            let (vi, vj, ti, tj) = self.branch_state(x, l);
            let y = &n.br_y[l];
            let idx = self.branch_var_indices(l);
            let f = n.br_from[l];
            let t = n.br_to[l];
            let rows = [f, n.nbus + f, t, n.nbus + t];
            for (kind, row) in FlowKind::all().into_iter().zip(rows) {
                let grad = BranchFlow::from_admittance(y, kind).gradient(vi, vj, ti, tj);
                let g4 = Self::flow_grad(&grad);
                for (col, val) in idx.iter().zip(g4) {
                    if val != 0.0 {
                        jac.push(row, *col, -val);
                    }
                }
            }
        }
        // Reference angle.
        jac.push(2 * n.nbus, self.va_idx(n.ref_bus), 1.0);
        jac
    }

    fn ineq_jacobian(&self, x: &[f64]) -> Coo {
        let n = self.net;
        let mut jac = Coo::with_capacity(self.num_ineq(), self.num_vars(), 8 * self.limited.len());
        for (k, &l) in self.limited.iter().enumerate() {
            let (vi, vj, ti, tj) = self.branch_state(x, l);
            let y = &n.br_y[l];
            let idx = self.branch_var_indices(l);
            for (row_offset, kinds) in [
                (0usize, (FlowKind::Pij, FlowKind::Qij)),
                (1usize, (FlowKind::Pji, FlowKind::Qji)),
            ] {
                let fp = BranchFlow::from_admittance(y, kinds.0);
                let fq = BranchFlow::from_admittance(y, kinds.1);
                let p = fp.value(vi, vj, ti, tj);
                let q = fq.value(vi, vj, ti, tj);
                let gp = Self::flow_grad(&fp.gradient(vi, vj, ti, tj));
                let gq = Self::flow_grad(&fq.gradient(vi, vj, ti, tj));
                for c4 in 0..4 {
                    let val = 2.0 * p * gp[c4] + 2.0 * q * gq[c4];
                    if val != 0.0 {
                        jac.push(2 * k + row_offset, idx[c4], val);
                    }
                }
            }
        }
        jac
    }

    fn lagrangian_hessian(
        &self,
        x: &[f64],
        obj_factor: f64,
        lambda_eq: &[f64],
        lambda_ineq: &[f64],
    ) -> Coo {
        let n = self.net;
        let nv = self.num_vars();
        let mut hess = Coo::with_capacity(nv, nv, 32 * n.nbranch + n.ngen + n.nbus);

        // Objective: quadratic generation cost.
        for g in 0..n.ngen {
            if n.cost_c2[g] != 0.0 {
                hess.push(
                    self.pg_idx(g),
                    self.pg_idx(g),
                    2.0 * obj_factor * n.cost_c2[g],
                );
            }
        }
        // Shunt second derivatives in the balance constraints.
        for b in 0..n.nbus {
            let mut v = 0.0;
            if n.gs[b] != 0.0 {
                v += lambda_eq[b] * (-2.0 * n.gs[b]);
            }
            if n.bs[b] != 0.0 {
                v += lambda_eq[n.nbus + b] * (2.0 * n.bs[b]);
            }
            if v != 0.0 {
                hess.push(self.vm_idx(b), self.vm_idx(b), v);
            }
        }
        // Branch flow second derivatives.
        for l in 0..n.nbranch {
            let (vi, vj, ti, tj) = self.branch_state(x, l);
            let y = &n.br_y[l];
            let idx = self.branch_var_indices(l);
            let f = n.br_from[l];
            let t = n.br_to[l];
            // Balance-constraint multipliers: the flow enters with a minus
            // sign in the constraint.
            let eq_weights = [
                -lambda_eq[f],
                -lambda_eq[n.nbus + f],
                -lambda_eq[t],
                -lambda_eq[n.nbus + t],
            ];
            let mut block = [[0.0f64; 4]; 4];
            let flows = BranchFlow::all_from_admittance(y);
            for (kf, w) in flows.iter().zip(eq_weights) {
                if w == 0.0 {
                    continue;
                }
                let h = kf.hessian(vi, vj, ti, tj).to_dense();
                for r in 0..4 {
                    for c in 0..4 {
                        block[r][c] += w * h[r][c];
                    }
                }
            }
            // Line-limit constraint contributions.
            if let Some(k) = self.limited.iter().position(|&b| b == l) {
                for (row_offset, kinds) in [
                    (0usize, (FlowKind::Pij, FlowKind::Qij)),
                    (1usize, (FlowKind::Pji, FlowKind::Qji)),
                ] {
                    let sigma = lambda_ineq[2 * k + row_offset];
                    if sigma == 0.0 {
                        continue;
                    }
                    let fp = BranchFlow::from_admittance(y, kinds.0);
                    let fq = BranchFlow::from_admittance(y, kinds.1);
                    let p = fp.value(vi, vj, ti, tj);
                    let q = fq.value(vi, vj, ti, tj);
                    let gp = Self::flow_grad(&fp.gradient(vi, vj, ti, tj));
                    let gq = Self::flow_grad(&fq.gradient(vi, vj, ti, tj));
                    let hp = fp.hessian(vi, vj, ti, tj).to_dense();
                    let hq = fq.hessian(vi, vj, ti, tj).to_dense();
                    for r in 0..4 {
                        for c in 0..4 {
                            block[r][c] += sigma
                                * (2.0 * gp[r] * gp[c]
                                    + 2.0 * p * hp[r][c]
                                    + 2.0 * gq[r] * gq[c]
                                    + 2.0 * q * hq[r][c]);
                        }
                    }
                }
            }
            for r in 0..4 {
                for c in 0..4 {
                    if block[r][c] != 0.0 {
                        hess.push(idx[r], idx[c], block[r][c]);
                    }
                }
            }
        }
        hess
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::cases;

    fn sample_x(nlp: &AcopfNlp<'_>) -> Vec<f64> {
        // A perturbed interior point exercising all nonlinearities.
        let n = nlp.network();
        let mut sol = cold_start(n);
        for b in 0..n.nbus {
            sol.va[b] = 0.02 * (b as f64 % 7.0) - 0.05;
            sol.vm[b] = 1.0 + 0.01 * ((b % 5) as f64 - 2.0);
        }
        sol.va[n.ref_bus] = 0.0;
        for g in 0..n.ngen {
            sol.pg[g] = 0.4 * (n.pmin[g] + n.pmax[g]);
            sol.qg[g] = 0.25 * (n.qmin[g] + n.qmax[g]);
        }
        nlp.from_solution(&sol)
    }

    #[test]
    fn dimensions_are_consistent() {
        let net = cases::case9().compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        assert_eq!(nlp.num_vars(), 2 * 9 + 2 * 3);
        assert_eq!(nlp.num_eq(), 19);
        assert_eq!(nlp.num_ineq(), 18);
        let (lo, hi) = nlp.bounds();
        assert_eq!(lo.len(), nlp.num_vars());
        assert!(lo.iter().zip(&hi).all(|(l, u)| l <= u));
    }

    #[test]
    fn solution_roundtrip() {
        let net = cases::case14().compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        let sol = cold_start(&net);
        let x = nlp.from_solution(&sol);
        let back = nlp.to_solution(&x);
        assert_eq!(sol, back);
    }

    #[test]
    fn eq_constraints_match_power_mismatch() {
        let net = cases::case9().compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        let x = sample_x(&nlp);
        let sol = nlp.to_solution(&x);
        let (dp, dq) = sol.power_mismatch(&net);
        let mut c = vec![0.0; nlp.num_eq()];
        nlp.eq_constraints(&x, &mut c);
        for b in 0..net.nbus {
            assert!((c[b] - dp[b]).abs() < 1e-10, "bus {b} P");
            assert!((c[net.nbus + b] - dq[b]).abs() < 1e-10, "bus {b} Q");
        }
        assert!((c[2 * net.nbus] - sol.va[net.ref_bus]).abs() < 1e-14);
    }

    #[test]
    fn objective_gradient_matches_finite_difference() {
        let net = cases::case9().compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        let x = sample_x(&nlp);
        let mut g = vec![0.0; nlp.num_vars()];
        nlp.objective_grad(&x, &mut g);
        let h = 1e-6;
        for i in 0..nlp.num_vars() {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[i] += h;
            xm[i] -= h;
            let fd = (nlp.objective(&xp) - nlp.objective(&xm)) / (2.0 * h);
            assert!((g[i] - fd).abs() < 1e-4, "var {i}: {} vs {fd}", g[i]);
        }
    }

    #[test]
    fn eq_jacobian_matches_finite_difference() {
        let net = cases::case9().compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        let x = sample_x(&nlp);
        let jac = nlp.eq_jacobian(&x).to_csc();
        let m = nlp.num_eq();
        let h = 1e-6;
        let mut cp = vec![0.0; m];
        let mut cm = vec![0.0; m];
        for col in 0..nlp.num_vars() {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[col] += h;
            xm[col] -= h;
            nlp.eq_constraints(&xp, &mut cp);
            nlp.eq_constraints(&xm, &mut cm);
            for row in 0..m {
                let fd = (cp[row] - cm[row]) / (2.0 * h);
                let val = jac.get(row, col);
                assert!(
                    (val - fd).abs() < 1e-5,
                    "eq jac ({row},{col}): {val} vs {fd}"
                );
            }
        }
    }

    #[test]
    fn ineq_jacobian_matches_finite_difference() {
        let net = cases::case9().compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        let x = sample_x(&nlp);
        let jac = nlp.ineq_jacobian(&x).to_csc();
        let m = nlp.num_ineq();
        let h = 1e-6;
        let mut cp = vec![0.0; m];
        let mut cm = vec![0.0; m];
        for col in 0..nlp.num_vars() {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[col] += h;
            xm[col] -= h;
            nlp.ineq_constraints(&xp, &mut cp);
            nlp.ineq_constraints(&xm, &mut cm);
            for row in 0..m {
                let fd = (cp[row] - cm[row]) / (2.0 * h);
                let val = jac.get(row, col);
                assert!(
                    (val - fd).abs() < 1e-4,
                    "ineq jac ({row},{col}): {val} vs {fd}"
                );
            }
        }
    }

    #[test]
    fn lagrangian_hessian_matches_finite_difference() {
        let net = cases::case9().compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        let x = sample_x(&nlp);
        let nv = nlp.num_vars();
        // Arbitrary but fixed multipliers.
        let lam_eq: Vec<f64> = (0..nlp.num_eq()).map(|i| 0.3 + 0.05 * (i as f64)).collect();
        let lam_ineq: Vec<f64> = (0..nlp.num_ineq())
            .map(|i| 0.1 + 0.02 * (i as f64))
            .collect();
        let obj_factor = 0.7;
        let hess = nlp
            .lagrangian_hessian(&x, obj_factor, &lam_eq, &lam_ineq)
            .to_csc();

        // Finite difference of the Lagrangian gradient.
        let lag_grad = |x: &[f64]| -> Vec<f64> {
            let mut g = vec![0.0; nv];
            nlp.objective_grad(x, &mut g);
            for v in &mut g {
                *v *= obj_factor;
            }
            let je = nlp.eq_jacobian(x);
            for k in 0..je.nnz() {
                g[je.cols[k]] += je.vals[k] * lam_eq[je.rows[k]];
            }
            let ji = nlp.ineq_jacobian(x);
            for k in 0..ji.nnz() {
                g[ji.cols[k]] += ji.vals[k] * lam_ineq[ji.rows[k]];
            }
            g
        };
        let h = 1e-6;
        // Spot check a subset of columns (full n^2 check is slow): every
        // variable family is covered.
        let cols_to_check: Vec<usize> = vec![
            0,
            net.ref_bus,
            net.nbus + 1,
            net.nbus + 4,
            2 * net.nbus,
            2 * net.nbus + net.ngen,
        ];
        for &col in &cols_to_check {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[col] += h;
            xm[col] -= h;
            let gp = lag_grad(&xp);
            let gm = lag_grad(&xm);
            for row in 0..nv {
                let fd = (gp[row] - gm[row]) / (2.0 * h);
                let val = hess.get(row, col);
                assert!(
                    (val - fd).abs() < 2e-4,
                    "hessian ({row},{col}): {val} vs {fd}"
                );
            }
        }
    }

    #[test]
    fn pg_bound_override_applies() {
        let net = cases::case9().compile().unwrap();
        let pmin = vec![0.5; 3];
        let pmax = vec![1.5; 3];
        let nlp = AcopfNlp::new(&net).with_pg_bounds(pmin.clone(), pmax.clone());
        let (lo, hi) = nlp.bounds();
        for g in 0..3 {
            assert_eq!(lo[2 * net.nbus + g], 0.5);
            assert_eq!(hi[2 * net.nbus + g], 1.5);
        }
    }

    #[test]
    fn unlimited_branches_have_no_line_constraints() {
        let mut case = cases::case9();
        for b in &mut case.branches {
            b.rate_a = 0.0;
        }
        let net = case.compile().unwrap();
        let nlp = AcopfNlp::new(&net);
        assert_eq!(nlp.num_ineq(), 0);
    }
}
