//! # gridsim-engine
//!
//! The solver-agnostic scenario execution engine: *where and when* a fleet
//! of scenario solves runs, with no opinion about *what* a solve is.
//!
//! The engine grew inside the ADMM scenario scheduler (device sharding,
//! lane caps, streaming admission) and is hoisted here so every solver
//! family rides the same machinery: a solver plugs in by implementing
//! [`LaneSolver`] — open a per-device shard, advance its active lanes,
//! extract a finished lane, admit the next pending scenario — and the
//! [`Engine`] supplies
//!
//! * **sharding** — scenarios are dealt round-robin across the logical
//!   devices of a [`DevicePool`] ([`plan::shard_plan`]); shards execute
//!   concurrently, one host thread per device, each billing its kernel work
//!   to its own device's statistics stream,
//! * **streaming admission** — each device runs a fixed number of *lanes*
//!   (slots). When a lane's scenario finishes, its result is extracted and
//!   the shard's next pending scenario is admitted into the freed lane
//!   ([`plan::admission_plan`]), so a busy device never idles lanes on
//!   finished work,
//! * **aggregation** — outputs come back in input order regardless of the
//!   device/lane configuration, with the run's tick count (longest device)
//!   and per-device statistics deltas alongside.
//!
//! The engine imposes no synchronization between lanes beyond the shard's
//! step call, so a `LaneSolver` whose lanes are arithmetically independent
//! (the ADMM scenario fleet, the interior-point fleet) produces results
//! that are **independent of the device count, lane cap, and admission
//! order** — bitwise for steppers whose per-lane work is
//! configuration-independent, to solver tolerance for warm-start-chained
//! solvers where the lane a scenario lands in decides its starting point.

pub mod jobs;
pub mod plan;
pub mod request;

pub use request::{FleetRequest, StoreAccess};

use gridsim_batch::{Device, DevicePool, StatsSnapshot};
use plan::{admission_plan, shard_plan, total_lanes};
use std::time::{Duration, Instant};

/// One solver family's view of fleet execution.
///
/// The engine drives implementations through a fixed protocol, per shard:
///
/// 1. [`open_shard`](LaneSolver::open_shard) once, with the scenarios that
///    occupy the initial lanes (slot `s` opens holding `initial[s]`),
/// 2. [`step`](LaneSolver::step) repeatedly — one engine *tick* — until
///    every lane is drained. A step advances every active lane and reports
///    which lanes finished their current scenario: a batched stepper (the
///    ADMM fleet) advances all lanes one iteration per call, a
///    solve-to-completion solver (the interior-point fleet) finishes every
///    active lane's scenario in a single call,
/// 3. [`extract`](LaneSolver::extract) for each finished lane, then either
///    [`admit`](LaneSolver::admit) of the next pending scenario into the
///    freed slot or deactivation when the shard's queue is empty.
///
/// Warm-start carry is the implementation's business: a lane is the natural
/// home for state that should flow from one admitted scenario to the next
/// (previous primal/dual point, a cached symbolic analysis), because a
/// lane's admissions form a sequential chain even when the fleet as a whole
/// runs wide.
pub trait LaneSolver: Sync {
    /// Per-device state: the shard's lanes plus whatever device buffers and
    /// caches the solver keeps per slot.
    type Shard;
    /// Per-scenario result.
    type Output: Send;

    /// Open one device's shard with `initial[s]` occupying slot `s`. The
    /// lane count of this shard is `initial.len()`.
    fn open_shard(&self, device: &Device, initial: &[usize]) -> Self::Shard;

    /// Advance every active lane; return per-slot "finished this scenario"
    /// flags (entries for inactive slots are ignored).
    fn step(&self, shard: &mut Self::Shard, active: &[bool]) -> Vec<bool>;

    /// Extract slot `slot`'s finished result for scenario `scenario`.
    fn extract(&self, shard: &mut Self::Shard, slot: usize, scenario: usize) -> Self::Output;

    /// Admit `scenario` into the freed slot `slot`.
    fn admit(&self, shard: &mut Self::Shard, slot: usize, scenario: usize);

    /// Called once for every admission — each initial occupant right after
    /// [`open_shard`](LaneSolver::open_shard) (in slot order) and each
    /// streamed refill right after its [`admit`](LaneSolver::admit) — so a
    /// solver has one uniform point to re-seed a freshly admitted lane
    /// (e.g. from a warm-start solution store) regardless of whether the
    /// scenario arrived with the opening batch or through streaming.
    /// Default: no-op.
    fn on_admit(&self, shard: &mut Self::Shard, slot: usize, scenario: usize) {
        let _ = (shard, slot, scenario);
    }
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineRun<T> {
    /// Per-scenario outputs, in input order.
    pub outputs: Vec<T>,
    /// Engine ticks executed: each tick is one [`LaneSolver::step`] per
    /// still-active shard, and shards run concurrently, so this is the
    /// *longest* device's step count (the wall-clock analogue), not the sum.
    pub ticks: usize,
    /// Wall-clock time of the run.
    pub solve_time: Duration,
    /// Per-device statistics deltas for this run, in device order (devices
    /// beyond the clamped shard count report empty deltas).
    pub device_stats: Vec<StatsSnapshot>,
}

/// The solver-agnostic scenario execution engine: a [`DevicePool`] plus a
/// lane policy, driving any [`LaneSolver`].
#[derive(Debug, Clone)]
pub struct Engine {
    pool: DevicePool,
    lanes_per_device: Option<usize>,
}

impl Engine {
    /// An engine on the environment-selected pool: `GRIDSIM_DEVICES`
    /// logical devices (default 1), each on the launch backend
    /// `GRIDSIM_BACKEND` selects (default: `ExecutionMode::Auto`
    /// resolution).
    pub fn from_env() -> Engine {
        Engine::with_pool(DevicePool::from_env())
    }

    /// An engine on a specific device pool.
    pub fn with_pool(pool: DevicePool) -> Engine {
        Engine {
            pool,
            lanes_per_device: None,
        }
    }

    /// Cap the number of concurrent scenario lanes per device. With fewer
    /// lanes than scenarios per shard, the engine streams: finished lanes
    /// are refilled from the pending queue. Without a cap (the default)
    /// each device admits its whole shard at once.
    pub fn with_lanes(mut self, lanes_per_device: usize) -> Engine {
        assert!(lanes_per_device >= 1, "need at least one lane");
        self.lanes_per_device = Some(lanes_per_device);
        self
    }

    /// The device pool scenarios are sharded across.
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// The configured lane cap, if any.
    pub fn lanes_per_device(&self) -> Option<usize> {
        self.lanes_per_device
    }

    /// Total lanes this engine opens for a run over `num_scenarios`
    /// scenarios ([`plan::total_lanes`] over this engine's configuration).
    pub fn total_lanes(&self, num_scenarios: usize) -> usize {
        total_lanes(num_scenarios, self.pool.len(), self.lanes_per_device)
    }

    /// Run `num_scenarios` scenarios through `solver`: shard round-robin
    /// across the pool, stream admissions within each shard, return outputs
    /// in input order.
    pub fn run<S: LaneSolver>(&self, solver: &S, num_scenarios: usize) -> EngineRun<S::Output> {
        let start_time = Instant::now();
        let before = self.pool.snapshots();
        let shards = shard_plan(num_scenarios, self.pool.len());
        let mut slots: Vec<Option<S::Output>> = (0..num_scenarios).map(|_| None).collect();
        let mut ticks = 0usize;
        if shards.len() == 1 {
            let (results, t) = run_shard(
                solver,
                self.pool.device(0),
                &shards[0],
                self.lanes_per_device,
            );
            ticks = t;
            for (idx, r) in results {
                slots[idx] = Some(r);
            }
        } else {
            // One host thread per device shard; each shard's kernel work is
            // billed to its own device stream.
            let shard_outputs = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .enumerate()
                    .map(|(d, shard)| {
                        let device = self.pool.device(d);
                        let lanes = self.lanes_per_device;
                        scope.spawn(move || run_shard(solver, device, shard, lanes))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("device shard thread panicked"))
                    .collect::<Vec<_>>()
            });
            for (results, t) in shard_outputs {
                // Shards run concurrently: the run's tick count is the
                // longest device's, the wall-clock analogue.
                ticks = ticks.max(t);
                for (idx, r) in results {
                    slots[idx] = Some(r);
                }
            }
        }
        EngineRun {
            outputs: slots
                .into_iter()
                .map(|r| r.expect("every scenario produces an output"))
                .collect(),
            ticks,
            solve_time: start_time.elapsed(),
            device_stats: self.pool.snapshots_since(&before),
        }
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::with_pool(DevicePool::default())
    }
}

/// Run one device's shard with streaming admission; returns the finished
/// scenarios tagged with their input indices, plus the shard's tick count.
fn run_shard<S: LaneSolver>(
    solver: &S,
    device: &Device,
    shard: &[usize],
    lane_cap: Option<usize>,
) -> (Vec<(usize, S::Output)>, usize) {
    let plan = admission_plan(shard, lane_cap);
    let ll = plan.lanes;
    let mut state = solver.open_shard(device, &plan.initial);
    for (s, &scenario) in plan.initial.iter().enumerate() {
        solver.on_admit(&mut state, s, scenario);
    }
    let mut occupant = plan.initial;
    let mut queue = plan.refills.into_iter();
    let mut active = vec![true; ll];
    let mut out: Vec<(usize, S::Output)> = Vec::with_capacity(shard.len());
    let mut ticks = 0usize;

    while active.iter().any(|&a| a) {
        ticks += 1;
        let finished = solver.step(&mut state, &active);
        debug_assert_eq!(finished.len(), ll, "one finished flag per lane");
        // Extract finished lanes and stream the next pending scenarios in.
        for s in 0..ll {
            if !active[s] || !finished[s] {
                continue;
            }
            out.push((occupant[s], solver.extract(&mut state, s, occupant[s])));
            match queue.next() {
                Some(next) => {
                    solver.admit(&mut state, s, next);
                    solver.on_admit(&mut state, s, next);
                    occupant[s] = next;
                }
                None => active[s] = false,
            }
        }
    }
    (out, ticks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A toy stepper: scenario `i` needs `work[i]` steps. Tracks admission
    /// sequences so the streaming protocol itself is testable without any
    /// real solver.
    struct Countdown {
        work: Vec<usize>,
        opened_shards: AtomicUsize,
        hook_calls: std::sync::Mutex<Vec<(usize, usize)>>,
    }

    struct CountdownShard {
        remaining: Vec<usize>,
        current: Vec<usize>,
        admissions: Vec<usize>,
    }

    impl Countdown {
        fn new(work: Vec<usize>) -> Countdown {
            Countdown {
                work,
                opened_shards: AtomicUsize::new(0),
                hook_calls: std::sync::Mutex::new(Vec::new()),
            }
        }
    }

    impl LaneSolver for Countdown {
        type Shard = CountdownShard;
        type Output = (usize, usize);

        fn open_shard(&self, _device: &Device, initial: &[usize]) -> CountdownShard {
            self.opened_shards.fetch_add(1, Ordering::Relaxed);
            CountdownShard {
                remaining: initial.iter().map(|&i| self.work[i]).collect(),
                current: initial.to_vec(),
                admissions: initial.to_vec(),
            }
        }

        fn step(&self, shard: &mut CountdownShard, active: &[bool]) -> Vec<bool> {
            shard
                .remaining
                .iter_mut()
                .zip(active)
                .map(|(r, &a)| {
                    if a {
                        *r -= 1;
                        *r == 0
                    } else {
                        false
                    }
                })
                .collect()
        }

        fn extract(
            &self,
            shard: &mut CountdownShard,
            slot: usize,
            scenario: usize,
        ) -> Self::Output {
            assert_eq!(shard.current[slot], scenario, "engine mixed up occupants");
            (scenario, self.work[scenario])
        }

        fn admit(&self, shard: &mut CountdownShard, slot: usize, scenario: usize) {
            shard.remaining[slot] = self.work[scenario];
            shard.current[slot] = scenario;
            shard.admissions.push(scenario);
        }

        fn on_admit(&self, shard: &mut CountdownShard, slot: usize, scenario: usize) {
            assert_eq!(shard.current[slot], scenario, "hook fires on the occupant");
            self.hook_calls.lock().unwrap().push((slot, scenario));
        }
    }

    #[test]
    fn outputs_come_back_in_input_order_for_any_configuration() {
        let work = vec![3, 1, 4, 1, 5, 2];
        for devices in 1..=4 {
            for lanes in [Some(1), Some(2), None] {
                let solver = Countdown::new(work.clone());
                let mut engine = Engine::with_pool(DevicePool::parallel(devices));
                if let Some(l) = lanes {
                    engine = engine.with_lanes(l);
                }
                let run = engine.run(&solver, work.len());
                let expected: Vec<(usize, usize)> = work.iter().copied().enumerate().collect();
                assert_eq!(run.outputs, expected, "devices={devices} lanes={lanes:?}");
            }
        }
    }

    #[test]
    fn single_device_ticks_equal_max_work_without_cap() {
        let solver = Countdown::new(vec![3, 1, 4]);
        let run = Engine::with_pool(DevicePool::parallel(1)).run(&solver, 3);
        assert_eq!(run.ticks, 4);
    }

    #[test]
    fn streaming_one_lane_serializes_the_shard() {
        let work = vec![3, 1, 4];
        let solver = Countdown::new(work.clone());
        let run = Engine::with_pool(DevicePool::parallel(1))
            .with_lanes(1)
            .run(&solver, 3);
        // One lane: ticks are the sum of all work, and outputs stay ordered.
        assert_eq!(run.ticks, work.iter().sum::<usize>());
        assert_eq!(run.outputs.len(), 3);
    }

    #[test]
    fn shards_open_once_per_clamped_device() {
        let solver = Countdown::new(vec![1, 1]);
        let run = Engine::with_pool(DevicePool::parallel(5)).run(&solver, 2);
        assert_eq!(solver.opened_shards.load(Ordering::Relaxed), 2);
        assert_eq!(run.outputs.len(), 2);
        assert_eq!(run.device_stats.len(), 5, "one delta per pool device");
    }

    #[test]
    fn on_admit_fires_once_per_admission_initial_and_streamed() {
        // One device, two lanes over five scenarios: slots open with {0, 1}
        // and stream {2, 3, 4} in as lanes drain.
        let work = vec![2, 1, 1, 1, 1];
        let solver = Countdown::new(work.clone());
        let run = Engine::with_pool(DevicePool::parallel(1))
            .with_lanes(2)
            .run(&solver, work.len());
        assert_eq!(run.outputs.len(), work.len());
        let calls = solver.hook_calls.lock().unwrap();
        // Exactly one hook call per admitted scenario, starting with the
        // initial occupants in slot order.
        assert_eq!(calls.len(), work.len());
        assert_eq!(calls[0], (0, 0));
        assert_eq!(calls[1], (1, 1));
        let mut seen: Vec<usize> = calls.iter().map(|&(_, sc)| sc).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn total_lanes_reflects_configuration() {
        let engine = Engine::with_pool(DevicePool::parallel(2)).with_lanes(2);
        assert_eq!(engine.total_lanes(5), 4);
        assert_eq!(Engine::with_pool(DevicePool::parallel(2)).total_lanes(5), 5);
    }

    #[test]
    fn env_pool_default_is_single_device() {
        if std::env::var(gridsim_batch::DEVICE_COUNT_ENV).is_err() {
            assert_eq!(Engine::from_env().pool().len(), 1);
        }
    }
}
