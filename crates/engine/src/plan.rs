//! The engine's scheduling decisions as pure functions.
//!
//! Everything the [`Engine`](crate::Engine) decides *before* any solver
//! state exists — which device owns which scenario, which scenarios occupy
//! the initial lanes, and which wait in the refill queue — lives here as
//! plain data-in/data-out functions. The engine executes exactly these
//! plans, and the test suites assert observable behavior (per-device kernel
//! billing, transfer counts per admission) against the same functions
//! instead of re-implementing the round-robin arithmetic by hand.

/// Round-robin shard plan: scenario `i` runs on device `i mod ndev`, where
/// `ndev = num_devices.min(num_scenarios)` (a device never gets an empty
/// shard). Shard `d` lists its scenarios in admission order.
pub fn shard_plan(num_scenarios: usize, num_devices: usize) -> Vec<Vec<usize>> {
    assert!(num_scenarios >= 1, "need at least one scenario");
    assert!(num_devices >= 1, "need at least one device");
    let ndev = num_devices.min(num_scenarios);
    (0..ndev)
        .map(|d| (d..num_scenarios).step_by(ndev).collect())
        .collect()
}

/// Admission plan of one shard under an optional lane cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPlan {
    /// Concurrent slots the shard runs (`min(lane_cap, shard length)`,
    /// the whole shard without a cap).
    pub lanes: usize,
    /// Scenarios occupying the initial lanes, in slot order (slot `s` opens
    /// with `initial[s]`).
    pub initial: Vec<usize>,
    /// Scenarios streamed in later, in admission order. Which *slot* a
    /// refill lands in depends on which scenario finishes first, but the
    /// refill *sequence* is fixed: the `i`-th slot to free up receives
    /// `refills[i]`.
    pub refills: Vec<usize>,
}

/// Plan one shard's admissions: the first `lanes` scenarios fill the slots,
/// the rest queue as refills.
pub fn admission_plan(shard: &[usize], lane_cap: Option<usize>) -> AdmissionPlan {
    assert!(!shard.is_empty(), "a shard needs at least one scenario");
    if let Some(cap) = lane_cap {
        assert!(cap >= 1, "need at least one lane");
    }
    let lanes = lane_cap.unwrap_or(shard.len()).min(shard.len());
    AdmissionPlan {
        lanes,
        initial: shard[..lanes].to_vec(),
        refills: shard[lanes..].to_vec(),
    }
}

/// Total number of lanes the engine opens for a run: the sum of per-shard
/// lane counts. This is the quantity per-lane resources (e.g. one symbolic
/// analysis per lane in an interior-point fleet) scale with — the lane
/// count, not the scenario count.
pub fn total_lanes(num_scenarios: usize, num_devices: usize, lane_cap: Option<usize>) -> usize {
    shard_plan(num_scenarios, num_devices)
        .iter()
        .map(|shard| admission_plan(shard, lane_cap).lanes)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_every_scenario_once() {
        let shards = shard_plan(7, 3);
        assert_eq!(shards, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
        let mut all: Vec<usize> = shards.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn more_devices_than_scenarios_clamps_to_scenario_count() {
        let shards = shard_plan(2, 5);
        assert_eq!(shards, vec![vec![0], vec![1]]);
    }

    #[test]
    fn admission_plan_without_cap_admits_everything() {
        let plan = admission_plan(&[4, 1, 9], None);
        assert_eq!(plan.lanes, 3);
        assert_eq!(plan.initial, vec![4, 1, 9]);
        assert!(plan.refills.is_empty());
    }

    #[test]
    fn admission_plan_with_cap_queues_the_tail() {
        let plan = admission_plan(&[0, 2, 4, 6], Some(2));
        assert_eq!(plan.lanes, 2);
        assert_eq!(plan.initial, vec![0, 2]);
        assert_eq!(plan.refills, vec![4, 6]);
    }

    #[test]
    fn lane_cap_above_shard_length_clamps() {
        let plan = admission_plan(&[3], Some(8));
        assert_eq!(plan.lanes, 1);
        assert_eq!(plan.refills, Vec::<usize>::new());
    }

    #[test]
    fn total_lanes_sums_per_shard_caps() {
        // 5 scenarios over 2 devices: shards of 3 and 2.
        assert_eq!(total_lanes(5, 2, None), 5);
        assert_eq!(total_lanes(5, 2, Some(2)), 4);
        assert_eq!(total_lanes(5, 2, Some(1)), 2);
        // Clamped device count: 2 scenarios over 4 devices is 2 shards.
        assert_eq!(total_lanes(2, 4, Some(1)), 2);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lane_cap_is_rejected() {
        let _ = admission_plan(&[0], Some(0));
    }
}
