//! Cross-job lane allocation as pure functions.
//!
//! [`plan`](crate::plan) decides how *one* fleet's scenarios spread over
//! devices and lanes. This module hoists the same streaming-admission idea
//! one level up, to a multi-tenant job queue: a daemon owns a fixed number
//! of execution slots, every queued job has pending work, and as any slot
//! frees the highest-priority job with pending work fills it — subject to a
//! per-job slot cap, which is the backpressure knob keeping one huge job
//! from starving the queue.
//!
//! Like the shard/admission plans, the decision is plain data-in/data-out:
//! the daemon's scheduler loop executes exactly [`lane_allocation`], and the
//! serve test suites assert dispatch order against the same function
//! instead of re-implementing the priority arithmetic.

/// One job's view of the allocator: static priority, submission order, and
/// current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSlot {
    /// Higher runs first.
    pub priority: i64,
    /// Submission sequence number — the FIFO tie-break among equal
    /// priorities (lower submits first).
    pub submitted: u64,
    /// Units of dispatchable work the job has ready (e.g. pending scenario
    /// chunks whose backoff, if any, has expired).
    pub pending: usize,
    /// Units currently executing in slots.
    pub running: usize,
    /// Backpressure cap: the job never occupies more than this many slots
    /// at once. `None` means uncapped.
    pub cap: Option<usize>,
}

impl JobSlot {
    /// How many more units this job may start right now.
    fn headroom(&self, extra_running: usize) -> usize {
        let occupied = self.running + extra_running;
        let by_cap = match self.cap {
            Some(cap) => cap.saturating_sub(occupied),
            None => usize::MAX,
        };
        by_cap.min(self.pending.saturating_sub(extra_running))
    }
}

/// Fill up to `free_slots` execution slots from `jobs`: repeatedly assign
/// the next slot to the job with the highest `(priority, −submitted,
/// −index)` among those with pending work and cap headroom. Returns the
/// chosen job indices in assignment order (a job appears once per slot it
/// wins). Deterministic in its inputs; no clocks, no randomness.
pub fn lane_allocation(free_slots: usize, jobs: &[JobSlot]) -> Vec<usize> {
    let mut assigned = vec![0usize; jobs.len()];
    let mut out = Vec::new();
    for _ in 0..free_slots {
        let winner = jobs
            .iter()
            .enumerate()
            .filter(|(j, job)| job.headroom(assigned[*j]) > 0)
            .min_by_key(|(j, job)| (std::cmp::Reverse(job.priority), job.submitted, *j))
            .map(|(j, _)| j);
        match winner {
            Some(j) => {
                assigned[j] += 1;
                out.push(j);
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(
        priority: i64,
        submitted: u64,
        pending: usize,
        running: usize,
        cap: Option<usize>,
    ) -> JobSlot {
        JobSlot {
            priority,
            submitted,
            pending,
            running,
            cap,
        }
    }

    #[test]
    fn higher_priority_fills_first() {
        let jobs = [job(1, 0, 2, 0, None), job(5, 1, 2, 0, None)];
        assert_eq!(lane_allocation(3, &jobs), vec![1, 1, 0]);
    }

    #[test]
    fn equal_priority_breaks_ties_fifo() {
        let jobs = [job(3, 7, 1, 0, None), job(3, 2, 2, 0, None)];
        assert_eq!(lane_allocation(3, &jobs), vec![1, 1, 0]);
    }

    #[test]
    fn cap_is_backpressure_not_starvation() {
        // The high-priority job is capped at 2 slots and already runs 1:
        // it takes one more slot, then the queue spills to the next job.
        let jobs = [job(9, 0, 10, 1, Some(2)), job(1, 1, 10, 0, None)];
        assert_eq!(lane_allocation(4, &jobs), vec![0, 1, 1, 1]);
    }

    #[test]
    fn exhausted_pending_stops_assignment() {
        let jobs = [job(5, 0, 1, 0, None), job(4, 1, 1, 0, None)];
        assert_eq!(lane_allocation(5, &jobs), vec![0, 1]);
    }

    #[test]
    fn no_work_means_no_assignments() {
        assert_eq!(lane_allocation(3, &[]), Vec::<usize>::new());
        let jobs = [job(5, 0, 0, 2, None), job(4, 1, 3, 3, Some(3))];
        assert_eq!(lane_allocation(3, &jobs), Vec::<usize>::new());
    }

    #[test]
    fn zero_free_slots_short_circuits() {
        let jobs = [job(5, 0, 3, 0, None)];
        assert_eq!(lane_allocation(0, &jobs), Vec::<usize>::new());
    }
}
