//! The unified fleet-request parameter object.
//!
//! Every fleet entry point used to grow a new method per knob combination —
//! `solve(nets)`, `solve_with_store(case_id, nets, store)`, and so on —
//! duplicated across solver families. [`FleetRequest`] collapses that
//! accretion into one parameter object: the scenarios to solve, an optional
//! case id (the solution-store group key), an optional store binding, and an
//! optional execution-mode override. Each solver family exposes a single
//! `run(request)` that consumes it; the old signatures survive one release
//! as `#[deprecated]` shims delegating here.
//!
//! ## Store bindings
//!
//! [`StoreAccess`] distinguishes the two lifetimes a store can have relative
//! to a run:
//!
//! * [`Live`](StoreAccess::Live) — the classic `solve_with_store` contract:
//!   the solver snapshots the store before the run (freeze-at-start),
//!   looks admissions up against the snapshot, and commits converged
//!   results back after the run in input order.
//! * [`Snapshot`](StoreAccess::Snapshot) — lookups only, against a caller-
//!   owned frozen [`StoreView`]. Nothing is committed; the caller owns the
//!   write side. This is what a durable job layer needs: lookups stay
//!   frozen at *job* start across many fleet runs (so a killed-and-resumed
//!   job sees the same store a straight-through job saw), and commits
//!   happen once, from the job's recorded results.
//!
//! A request that binds a store must also carry a case id — the store is
//! keyed by it.

use gridsim_batch::ExecutionMode;
use gridsim_grid::Network;
use gridsim_store::{SolutionStore, StoreView};

/// How a fleet run touches the warm-start solution store.
#[derive(Debug, Default)]
pub enum StoreAccess<'a, P> {
    /// No store: every admission starts cold (or from its lane's chain).
    #[default]
    None,
    /// Freeze-at-start lookups plus post-run commits, both handled by the
    /// solver (the `solve_with_store` contract).
    Live(&'a mut SolutionStore<P>),
    /// Lookups against a caller-owned frozen snapshot; the solver commits
    /// nothing.
    Snapshot(&'a StoreView<P>),
}

impl<P> StoreAccess<'_, P> {
    /// True unless this is [`StoreAccess::None`].
    pub fn is_bound(&self) -> bool {
        !matches!(self, StoreAccess::None)
    }
}

/// One fleet invocation, as data: scenarios, store binding, execution mode.
///
/// Build with [`FleetRequest::over`] and the chainable setters:
///
/// ```ignore
/// let report = fleet.run(
///     FleetRequest::over(&nets)
///         .case("case9")
///         .store(&mut store)
///         .mode(ExecutionMode::Vectorized),
/// );
/// ```
#[derive(Debug)]
pub struct FleetRequest<'a, P> {
    /// Scenarios to solve, in input order (outputs come back in the same
    /// order).
    pub nets: &'a [Network],
    /// Store group key: the named case these scenarios are variations of.
    /// Required when a store is bound, optional otherwise.
    pub case_id: Option<&'a str>,
    /// Warm-start store binding.
    pub store: StoreAccess<'a, P>,
    /// Execution-mode override for this run: the fleet's devices are
    /// rebuilt on this backend (same device count and lane policy). `None`
    /// keeps the fleet's configured pool.
    pub mode: Option<ExecutionMode>,
}

impl<'a, P> FleetRequest<'a, P> {
    /// A request over `nets` with no case id, no store, and the fleet's
    /// configured execution mode.
    pub fn over(nets: &'a [Network]) -> FleetRequest<'a, P> {
        FleetRequest {
            nets,
            case_id: None,
            store: StoreAccess::None,
            mode: None,
        }
    }

    /// Set the case id (the solution-store group key).
    pub fn case(mut self, case_id: &'a str) -> FleetRequest<'a, P> {
        self.case_id = Some(case_id);
        self
    }

    /// Bind a live store: freeze-at-start lookups, post-run commits.
    pub fn store(mut self, store: &'a mut SolutionStore<P>) -> FleetRequest<'a, P> {
        self.store = StoreAccess::Live(store);
        self
    }

    /// Bind a frozen snapshot: lookups only, no commits.
    pub fn snapshot(mut self, view: &'a StoreView<P>) -> FleetRequest<'a, P> {
        self.store = StoreAccess::Snapshot(view);
        self
    }

    /// Override the execution mode for this run.
    pub fn mode(mut self, mode: ExecutionMode) -> FleetRequest<'a, P> {
        self.mode = Some(mode);
        self
    }

    /// The case id, enforcing the store-implies-case invariant. Solver
    /// `run()` implementations call this instead of unwrapping by hand.
    ///
    /// # Panics
    /// When a store is bound without a case id.
    pub fn store_case_id(&self) -> Option<&'a str> {
        if self.store.is_bound() {
            Some(
                self.case_id
                    .expect("a store-backed FleetRequest needs a case id: use .case(...)"),
            )
        } else {
            self.case_id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim_grid::case9;

    #[test]
    fn builder_defaults_are_empty() {
        let nets = vec![case9().compile().unwrap()];
        let req: FleetRequest<'_, u32> = FleetRequest::over(&nets);
        assert_eq!(req.nets.len(), 1);
        assert!(req.case_id.is_none());
        assert!(!req.store.is_bound());
        assert!(req.mode.is_none());
        assert_eq!(req.store_case_id(), None);
    }

    #[test]
    fn setters_chain() {
        let nets = vec![case9().compile().unwrap()];
        let mut store: SolutionStore<u32> = SolutionStore::new();
        let req = FleetRequest::over(&nets)
            .case("case9")
            .store(&mut store)
            .mode(ExecutionMode::Sequential);
        assert_eq!(req.store_case_id(), Some("case9"));
        assert!(matches!(req.store, StoreAccess::Live(_)));
        assert_eq!(req.mode, Some(ExecutionMode::Sequential));
    }

    #[test]
    fn snapshot_binding_is_lookup_only() {
        let nets = vec![case9().compile().unwrap()];
        let store: SolutionStore<u32> = SolutionStore::new();
        let view = store.view();
        let req = FleetRequest::over(&nets).case("case9").snapshot(&view);
        assert!(matches!(req.store, StoreAccess::Snapshot(_)));
    }

    #[test]
    #[should_panic(expected = "needs a case id")]
    fn store_without_case_id_is_rejected() {
        let nets = vec![case9().compile().unwrap()];
        let mut store: SolutionStore<u32> = SolutionStore::new();
        let req = FleetRequest::over(&nets).store(&mut store);
        let _ = req.store_case_id();
    }
}
